"""Unit tests for the off-chip memory tier."""

import pytest

from repro.core import MemRequest
from repro.flow import build_simulation, compile_design
from repro.hic import analyze
from repro.memory import (
    DEFAULT_LATENCY,
    OffchipController,
    OffchipMemory,
    Residency,
    allocate,
)

#: 600 words exceed one 512-word BRAM: must spill when allowed.
BIG_ARRAY = """
thread t () {
  int big[600], i, x, done;
  if (done == 0) {
    for (i = 0; i < 4; i = i + 1) { big[i] = i * 3; }
    x = big[2];
    done = 1;
  }
}
"""


class TestOffchipMemory:
    def test_read_write_roundtrip(self):
        memory = OffchipMemory("x0")
        memory.write(1000, 77)
        assert memory.read(1000) == 77
        assert memory.peek(1000) == 77

    def test_uninitialized_reads_zero(self):
        assert OffchipMemory("x0").read(42) == 0

    def test_bounds_checked(self):
        memory = OffchipMemory("x0", depth=100)
        with pytest.raises(IndexError):
            memory.read(100)
        with pytest.raises(IndexError):
            memory.write(-1, 0)

    def test_width_truncation(self):
        memory = OffchipMemory("x0")
        memory.write(0, 1 << 40)
        assert memory.read(0) == (1 << 40) & ((1 << 36) - 1)


class TestOffchipController:
    def test_access_takes_latency_cycles(self):
        controller = OffchipController(OffchipMemory("x0"), latency=4)
        granted_at = None
        for cycle in range(10):
            controller.submit(MemRequest("t", "A", 5, True, data=9))
            results = controller.arbitrate(cycle)
            if results.get("t") and results["t"].granted:
                granted_at = cycle
                break
        assert granted_at == 3  # cycles 0..3 = 4 cycles of occupancy

    def test_single_port_serializes_clients(self):
        controller = OffchipController(OffchipMemory("x0"), latency=2)
        grants = []
        pending = {"a": MemRequest("a", "A", 0, True, data=1),
                   "b": MemRequest("b", "A", 1, True, data=2)}
        for cycle in range(10):
            for request in pending.values():
                controller.submit(request)
            results = controller.arbitrate(cycle)
            for client, result in results.items():
                if result.granted:
                    grants.append((cycle, client))
                    del pending[client]
            if not pending:
                break
        assert grants == [(1, "a"), (3, "b")]

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            OffchipController(OffchipMemory("x0"), latency=0)

    def test_reset(self):
        controller = OffchipController(OffchipMemory("x0"))
        controller.submit(MemRequest("t", "A", 0, False))
        controller.arbitrate(0)
        controller.reset()
        assert controller.latency_samples == []


class TestSpillAllocation:
    def test_big_array_spills_when_allowed(self):
        checked = analyze(BIG_ARRAY)
        mm = allocate(checked, allow_offchip=True)
        placement = mm.placement("t", "big")
        assert placement.residency is Residency.OFFCHIP
        assert placement.bram == "offchip0"
        assert placement.words == 600
        assert mm.offchip_fill["offchip0"] == 600

    def test_big_array_rejected_by_default(self):
        checked = analyze(BIG_ARRAY)
        with pytest.raises(ValueError, match="more than one BRAM"):
            allocate(checked)

    def test_spilled_dependency_rejected_downstream(self):
        # The language surface cannot produce a >1-BRAM guarded variable
        # (produced values are scalars or messages), but the invariant is
        # enforced at both layers; exercise the grouping-layer check with a
        # hand-built map.
        from repro.hic.pragmas import ConsumerRef, Dependency
        from repro.memory import MemoryMap, Placement
        from repro.memory.allocation import dependencies_per_bram

        mm = MemoryMap()
        mm.offchip_names.append("offchip0")
        mm.placements[("p", "x")] = Placement(
            thread="p",
            variable="x",
            residency=Residency.OFFCHIP,
            bram="offchip0",
            base_address=0,
            words=600,
            bits=600 * 32,
        )
        dep = Dependency("d", "p", "x", (ConsumerRef("c", "v"),))
        with pytest.raises(ValueError, match="BRAM-resident"):
            dependencies_per_bram(mm, [dep])

    def test_small_data_still_goes_to_bram(self):
        checked = analyze(BIG_ARRAY)
        mm = allocate(checked, allow_offchip=True)
        # Scalars stay registers; nothing else needs the BRAM here.
        assert mm.placement("t", "x").residency is Residency.REGISTER


class TestOffchipSimulation:
    def test_spilled_array_program_runs_correctly(self):
        design = compile_design(BIG_ARRAY, allow_offchip=True)
        sim = build_simulation(design)
        sim.run(400)
        assert sim.executors["t"].env["x"] == 6  # big[2] == 2 * 3

    def test_offchip_latency_slows_execution(self):
        fast = compile_design(
            BIG_ARRAY.replace("big[600]", "big[100]")
        )
        slow = compile_design(BIG_ARRAY, allow_offchip=True)

        sim_fast = build_simulation(fast)
        sim_fast.run(400)
        sim_slow = build_simulation(slow)
        sim_slow.run(400)

        # Same program shape; the off-chip version stalls on every access.
        assert (
            sim_slow.executors["t"].stats.stall_cycles
            > sim_fast.executors["t"].stats.stall_cycles
        )

    def test_offchip_controller_instantiated(self):
        design = compile_design(BIG_ARRAY, allow_offchip=True)
        sim = build_simulation(design)
        assert "offchip0" in sim.controllers
        assert isinstance(sim.controllers["offchip0"], OffchipController)
        assert sim.controllers["offchip0"].latency == DEFAULT_LATENCY
