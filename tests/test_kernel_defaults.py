"""Regression net for the default simulation kernel.

Before ``DEFAULT_KERNEL`` existed the default lived as a loose
``"wheel"`` string in five places (the flow API and four CLI parsers),
and they had already drifted once.  These tests pin every surface to
the single shared constant, and pin the registry so a renamed or
dropped backend fails here rather than deep inside a campaign.
"""

import inspect

from repro.flow import DEFAULT_KERNEL, SIMULATION_KERNELS, build_simulation


class TestSharedConstant:
    def test_default_kernel_is_wheel(self):
        assert DEFAULT_KERNEL == "wheel"

    def test_default_kernel_is_registered(self):
        assert DEFAULT_KERNEL in SIMULATION_KERNELS

    def test_registry_lists_all_backends(self):
        assert SIMULATION_KERNELS == ("reference", "wheel", "compiled")


class TestApiDefaults:
    def test_build_simulation_defaults_to_shared_constant(self):
        signature = inspect.signature(build_simulation)
        assert signature.parameters["kernel"].default is DEFAULT_KERNEL

    def test_validate_resolves_none_to_shared_constant(self):
        # model.validate cannot import the flow at module scope (the
        # flow imports it back), so its ``kernel=None`` sentinel must
        # resolve to DEFAULT_KERNEL at call time.
        from repro.model.validate import simulate_config, validate

        for fn in (simulate_config, validate):
            assert inspect.signature(fn).parameters["kernel"].default is None


class TestCliDefaults:
    def _default_of(self, parser):
        for action in parser._actions:
            if "--kernel" in action.option_strings:
                return action
        raise AssertionError("parser has no --kernel option")

    def test_run_cli(self):
        from repro.__main__ import _parser

        action = self._default_of(_parser())
        assert action.default is DEFAULT_KERNEL
        assert tuple(action.choices) == SIMULATION_KERNELS

    def test_profile_cli(self):
        from repro.obs.profile_cli import _profile_parser

        action = self._default_of(_profile_parser())
        assert action.default is DEFAULT_KERNEL
        assert tuple(action.choices) == SIMULATION_KERNELS

    def test_predict_cli(self):
        from repro.model.cli import _predict_parser

        action = self._default_of(_predict_parser())
        assert action.default is DEFAULT_KERNEL
        assert tuple(action.choices) == SIMULATION_KERNELS

    def test_faults_cli(self):
        from repro.faults.campaign import _faults_parser

        action = self._default_of(_faults_parser())
        # None = "resolve to the flow default at run time" (the campaign
        # deliberately keeps the kernel out of its fingerprinted config)
        assert action.default is None
        assert tuple(action.choices) == SIMULATION_KERNELS


class TestDefaultKernelBehaviour:
    def test_default_build_uses_wheel_kernel(self):
        from repro.net import forwarding_source
        from repro.flow import compile_design
        from repro.sim.wheel import FastKernel

        sim = build_simulation(compile_design(forwarding_source(2)))
        assert isinstance(sim.kernel, FastKernel)
