"""Cross-bank dependency router: gating, notification latency, and the
guard-ordering acceptance property."""

import pytest

from repro.fabric import DependencyRouter, RoutedDependency


def entry(dep_id="mt1", dn=2, **kwargs):
    defaults = dict(
        dep_id=dep_id,
        dependency_number=dn,
        logical_address=5,
        home_bank=1,
        data_bank=0,
        producer_thread="t1",
        consumer_threads=("t2", "t3"),
    )
    defaults.update(kwargs)
    return RoutedDependency(**defaults)


class TestGating:
    def test_reads_blocked_until_armed(self):
        router = DependencyRouter(notify_latency=1)
        router.add(entry())
        assert not router.read_release_allowed("mt1")
        assert router.write_release_allowed("mt1")

    def test_write_arms_after_notification_latency(self):
        router = DependencyRouter(notify_latency=2)
        router.add(entry(dn=2))
        router.on_write_released("mt1", cycle=0)
        router.on_write_granted("mt1", cycle=3)
        # The arm notification travels; reads stay gated meanwhile.
        assert router.tick(4) == []
        assert not router.read_release_allowed("mt1")
        assert router.tick(5) == ["mt1"]
        assert router.entries["mt1"].outstanding == 2
        assert router.read_release_allowed("mt1")

    def test_next_write_gated_until_reads_drain(self):
        router = DependencyRouter(notify_latency=0)
        router.add(entry(dn=1))
        router.on_write_granted("mt1", cycle=0)
        router.tick(0)
        # Armed with one grant; the producer's next write must wait.
        assert not router.write_release_allowed("mt1")
        router.on_read_released("mt1", cycle=1)
        # Read in flight: still gated (reserved > 0).
        assert not router.write_release_allowed("mt1")
        router.on_read_granted("mt1", cycle=2)
        assert router.write_release_allowed("mt1")

    def test_reservations_stop_over_release(self):
        router = DependencyRouter(notify_latency=0)
        router.add(entry(dn=1))
        router.on_write_granted("mt1", cycle=0)
        router.tick(0)
        assert router.read_release_allowed("mt1")
        router.on_read_released("mt1", cycle=1)
        # Only dn=1 read may travel; a second consumer must wait.
        assert not router.read_release_allowed("mt1")

    def test_write_gated_while_arm_in_flight(self):
        router = DependencyRouter(notify_latency=5)
        router.add(entry(dn=1))
        router.on_write_granted("mt1", cycle=0)
        assert router.entries["mt1"].arm_in_flight
        assert not router.write_release_allowed("mt1")


class TestGuardOrdering:
    def test_clean_protocol_run_verifies(self):
        router = DependencyRouter(notify_latency=1)
        router.add(entry(dn=2))
        for round_start in (0, 10):
            router.on_write_released("mt1", round_start)
            router.on_write_granted("mt1", round_start + 1)
            router.tick(round_start + 2)
            for consumer_cycle in (3, 4):
                router.on_read_released("mt1", round_start + consumer_cycle)
                router.on_read_granted("mt1", round_start + consumer_cycle + 1)
        assert router.verify_guard_ordering() == []

    def test_read_before_write_is_flagged(self):
        router = DependencyRouter(notify_latency=1)
        router.add(entry(dn=2))
        # A read released with no arm ever applied: a protocol violation.
        router.events.append(("read-released", "mt1", 0))
        violations = router.verify_guard_ordering()
        assert violations and "before the producer write" in violations[0]

    def test_arm_without_write_is_flagged(self):
        router = DependencyRouter(notify_latency=1)
        router.add(entry())
        router.events.append(("arm-applied", "mt1", 0))
        violations = router.verify_guard_ordering()
        assert violations and "without a granted producer write" in violations[0]

    def test_over_budget_reads_are_flagged(self):
        router = DependencyRouter(notify_latency=0)
        router.add(entry(dn=1))
        router.on_write_released("mt1", 0)
        router.on_write_granted("mt1", 0)
        router.tick(0)
        router.events.append(("read-released", "mt1", 1))
        router.events.append(("read-released", "mt1", 1))
        assert len(router.verify_guard_ordering()) == 1


class TestRecoverySeams:
    def test_force_arm_unblocks_a_stuck_read(self):
        router = DependencyRouter()
        router.add(entry(dn=1))
        assert router.force_arm("mt1")
        assert router.read_release_allowed("mt1")
        # Already armed: a second force is a no-op.
        assert not router.force_arm("mt1")

    def test_force_drain_clears_state(self):
        router = DependencyRouter(notify_latency=10)
        router.add(entry(dn=2))
        router.on_write_granted("mt1", cycle=0)
        assert router.force_drain("mt1")
        assert router.write_release_allowed("mt1")
        assert router.tick(10) == []  # notification was cancelled
        assert not router.force_drain("mt1")

    def test_unknown_dep_ids(self):
        router = DependencyRouter()
        assert not router.manages("missing")
        assert not router.manages(None)
        assert not router.force_arm("missing")
        assert not router.force_drain("missing")


class TestMisc:
    def test_stats_and_reset(self):
        router = DependencyRouter(notify_latency=0)
        router.add(entry(dn=1))
        router.on_write_released("mt1", 0)
        router.on_write_granted("mt1", 0)
        router.tick(0)
        router.on_read_released("mt1", 1)
        router.on_read_granted("mt1", 2)
        stats = router.stats
        assert (stats.writes_routed, stats.reads_routed) == (1, 1)
        assert stats.notifications_sent == stats.notifications_applied == 1
        router.reset()
        assert router.stats.writes_routed == 0
        assert router.events == []
        assert router.entries["mt1"].outstanding == 0

    def test_counter_bits(self):
        assert entry(dn=1).counter_bits == 1
        assert entry(dn=15).counter_bits == 4

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DependencyRouter(notify_latency=-1)

    def test_len_counts_entries(self):
        router = DependencyRouter()
        router.add(entry("a"))
        router.add(entry("b"))
        assert len(router) == 2
