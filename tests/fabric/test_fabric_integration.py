"""End-to-end fabric behaviour through the compile/simulate flow.

The headline acceptance properties:

* the Figure-1 3-thread program produces **identical consumer-observed
  values** on a 1-bank and a 4-bank fabric, for both the §3.1 arbitrated
  and §3.2 event-driven organizations;
* with dependency entries spread across banks, the cross-bank router
  **never releases a consumer read before the producer write** (checked
  against the router's event log).
"""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design


def consumer_values(sim):
    """The values each consumer thread observed (its whole environment)."""
    return {
        thread: dict(sim.executors[thread].env) for thread in ("t2", "t3")
    }


def run_fabric(source, organization, banks, cycles=400, **kwargs):
    design = compile_design(
        source, organization=organization, num_banks=banks, **kwargs
    )
    sim = build_simulation(design)
    sim.run(cycles)
    return design, sim


class TestValueEquivalence:
    @pytest.mark.parametrize(
        "organization",
        [Organization.ARBITRATED, Organization.EVENT_DRIVEN],
        ids=["arbitrated", "event_driven"],
    )
    def test_figure1_matches_between_1_and_4_banks(
        self, figure1_source, organization
    ):
        __, one = run_fabric(figure1_source, organization, banks=1)
        __, four = run_fabric(figure1_source, organization, banks=4)
        assert consumer_values(one) == consumer_values(four)

    @pytest.mark.parametrize(
        "organization",
        [Organization.ARBITRATED, Organization.EVENT_DRIVEN],
        ids=["arbitrated", "event_driven"],
    )
    def test_fabric_matches_the_single_controller_flow(
        self, figure1_source, organization
    ):
        design = compile_design(figure1_source, organization=organization)
        baseline = build_simulation(design)
        baseline.run(400)
        __, fabric = run_fabric(figure1_source, organization, banks=4)
        assert consumer_values(fabric) == consumer_values(baseline)

    def test_spread_dep_home_still_agrees(self, figure1_source):
        design = compile_design(figure1_source)
        baseline = build_simulation(design)
        baseline.run(400)
        __, fabric = run_fabric(
            figure1_source,
            Organization.ARBITRATED,
            banks=4,
            dep_home="spread",
        )
        assert consumer_values(fabric) == consumer_values(baseline)

    def test_range_sharding_agrees(self, figure1_source):
        __, interleaved = run_fabric(
            figure1_source, Organization.ARBITRATED, banks=2
        )
        __, ranged = run_fabric(
            figure1_source,
            Organization.ARBITRATED,
            banks=2,
            shard_policy="range",
        )
        assert consumer_values(interleaved) == consumer_values(ranged)


class TestCrossBankGuards:
    def test_spread_creates_cross_bank_dependencies(self, figure1_source):
        design, __ = run_fabric(
            figure1_source,
            Organization.ARBITRATED,
            banks=4,
            dep_home="spread",
            cycles=0,
        )
        assert design.fabric.cross_bank_count == 1
        routed = design.fabric.routed_deps[0]
        assert routed.home_bank != routed.data_bank

    @pytest.mark.parametrize(
        "organization",
        [
            Organization.ARBITRATED,
            Organization.EVENT_DRIVEN,
            Organization.LOCK_BASELINE,
        ],
        ids=["arbitrated", "event_driven", "lock_baseline"],
    )
    def test_guards_never_release_a_read_before_the_write(
        self, figure1_source, organization
    ):
        __, sim = run_fabric(
            figure1_source, organization, banks=4, dep_home="spread"
        )
        fabric = sim.controllers["fabric"]
        router = fabric.router
        # The router actually carried traffic...
        assert router.stats.writes_routed > 0
        assert router.stats.reads_routed > 0
        # ...and its event log shows no read escaping ahead of its write.
        assert router.verify_guard_ordering() == []

    def test_address_dep_home_routes_nothing(self, figure1_source):
        __, sim = run_fabric(figure1_source, Organization.ARBITRATED, banks=4)
        router = sim.controllers["fabric"].router
        assert len(router) == 0
        assert router.stats.writes_routed == 0


class TestFabricProgress:
    def test_all_threads_make_rounds(self, figure1_source):
        __, sim = run_fabric(figure1_source, Organization.ARBITRATED, banks=2)
        for executor in sim.executors.values():
            assert executor.stats.rounds_completed > 0

    def test_link_latency_slows_but_does_not_change_values(
        self, figure1_source
    ):
        __, fast = run_fabric(
            figure1_source, Organization.ARBITRATED, banks=2, link_latency=1
        )
        __, slow = run_fabric(
            figure1_source, Organization.ARBITRATED, banks=2, link_latency=5
        )
        assert consumer_values(fast) == consumer_values(slow)
        fast_rounds = sum(
            e.stats.rounds_completed for e in fast.executors.values()
        )
        slow_rounds = sum(
            e.stats.rounds_completed for e in slow.executors.values()
        )
        assert slow_rounds < fast_rounds

    def test_fabric_stats_shape(self, figure1_source):
        __, sim = run_fabric(figure1_source, Organization.ARBITRATED, banks=2)
        stats = sim.controllers["fabric"].fabric_stats()
        assert set(stats) == {"banks", "crossbar", "router"}
        assert set(stats["banks"]) == {"bank0", "bank1"}
        assert stats["crossbar"]["forwarded"] >= stats["crossbar"]["delivered"]

    def test_reset_restores_a_clean_fabric(self, figure1_source):
        design, sim = run_fabric(
            figure1_source, Organization.ARBITRATED, banks=2
        )
        fabric = sim.controllers["fabric"]
        fabric.reset()
        assert fabric.latency_samples == []
        assert fabric.crossbar.stats.forwarded == 0
        stats = fabric.fabric_stats()
        assert all(b["routed"] == 0 for b in stats["banks"].values())


class TestCompileValidation:
    def test_force_single_bram_is_incompatible(self, figure1_source):
        with pytest.raises(ValueError, match="incompatible"):
            compile_design(figure1_source, num_banks=2, force_single_bram=True)

    def test_unknown_dep_home_rejected(self, figure1_source):
        with pytest.raises(ValueError, match="dep_home"):
            compile_design(figure1_source, num_banks=2, dep_home="everywhere")

    def test_fabric_reports_need_fabric_mode(self, figure1_source):
        design = compile_design(figure1_source)
        with pytest.raises(ValueError, match="num_banks"):
            design.fabric_area_report()
        with pytest.raises(ValueError, match="num_banks"):
            design.fabric_timing_report()

    def test_memory_map_records_fabric_shape(self, figure1_source):
        design = compile_design(figure1_source, num_banks=4)
        assert design.memory_map.fabric_banks == 4
        assert design.memory_map.fabric_policy == "interleaved"
        assert design.memory_map.bram_names == ["fabric"]


class TestFabricEstimates:
    def test_area_grows_monotonically_with_banks(self, figure1_source):
        previous = 0
        for banks in (1, 2, 4, 8):
            design = compile_design(figure1_source, num_banks=banks)
            report = design.fabric_area_report()
            assert report.total.slices > previous
            assert report.total.brams == banks
            previous = report.total.slices

    def test_timing_is_monotone_in_banks(self, figure1_source):
        previous = 0.0
        for banks in (1, 2, 4, 8):
            design = compile_design(figure1_source, num_banks=banks)
            worst = design.fabric_timing_report().worst
            assert worst.period_ns >= previous
            previous = worst.period_ns

    def test_crossbar_deepens_with_banks(self, figure1_source):
        small = compile_design(figure1_source, num_banks=2)
        large = compile_design(figure1_source, num_banks=8)
        __, small_levels = small.crossbar_module.worst_path()
        __, large_levels = large.crossbar_module.worst_path()
        assert large_levels > small_levels

    def test_fabric_renders(self, figure1_source):
        design = compile_design(figure1_source, num_banks=2)
        assert "fabric" in design.fabric_area_report().render()
        assert "fmax" in design.fabric_timing_report().render()


class TestTelemetryIntegration:
    def test_bank_labels_and_routing_events(self, figure1_source):
        design = compile_design(
            figure1_source, num_banks=4, dep_home="spread"
        )
        sim = build_simulation(design)
        telemetry = sim.attach_telemetry()
        sim.run(300)
        registry = telemetry.finalize()
        rendered = registry.render_prometheus()
        assert 'bram="bank0"' in rendered
        assert "sim_fabric_router_events_total" in rendered
        assert "sim_fabric_crossbar_requests_total" in rendered
        assert telemetry.events_of_kind("dep-routed")
        assert telemetry.events_of_kind("dep-notified")
