"""Sharding-policy address arithmetic."""

import pytest

from repro.fabric import (
    InterleavedSharding,
    POLICIES,
    RangeSharding,
    make_policy,
)


class TestInterleaved:
    def test_consecutive_words_rotate_across_banks(self):
        policy = InterleavedSharding(4)
        assert [policy.bank_for(a) for a in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_local_addresses_pack_densely(self):
        policy = InterleavedSharding(4)
        assert [policy.local_address(a) for a in range(8)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]

    def test_round_trip_is_bijective(self):
        policy = InterleavedSharding(3, words_per_bank=16)
        seen = set()
        for logical in range(policy.capacity):
            bank = policy.bank_for(logical)
            local = policy.local_address(logical)
            assert policy.logical_address(bank, local) == logical
            seen.add((bank, local))
        assert len(seen) == policy.capacity


class TestRange:
    def test_banks_own_contiguous_slices(self):
        policy = RangeSharding(2, words_per_bank=4)
        assert [policy.bank_for(a) for a in range(8)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]
        assert [policy.local_address(a) for a in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_round_trip_is_bijective(self):
        policy = RangeSharding(4, words_per_bank=8)
        for logical in range(policy.capacity):
            assert policy.logical_address(
                policy.bank_for(logical), policy.local_address(logical)
            ) == logical


class TestPolicyRegistry:
    def test_make_policy_by_name(self):
        assert isinstance(make_policy("interleaved", 2), InterleavedSharding)
        assert isinstance(make_policy("range", 2), RangeSharding)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown sharding policy"):
            make_policy("hashed", 2)

    def test_registry_names_match_classes(self):
        for name, cls in POLICIES.items():
            assert cls.name == name

    def test_zero_banks_rejected(self):
        with pytest.raises(ValueError):
            make_policy("interleaved", 0)

    def test_out_of_range_address_rejected(self):
        policy = make_policy("interleaved", 2, words_per_bank=4)
        with pytest.raises(ValueError, match="outside"):
            policy.bank_for(8)
        with pytest.raises(ValueError, match="outside"):
            policy.local_address(-1)

    def test_bank_names_and_describe(self):
        policy = make_policy("range", 2)
        assert policy.bank_name(0) == "bank0"
        assert policy.bank_name(1) == "bank1"
        assert "range" in policy.describe()
