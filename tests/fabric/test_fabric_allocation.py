"""Fabric-aware allocation and the structured AllocationError."""

import pytest

from repro.analysis.memgraph import (
    build_memory_graphs,
    partition_threads_across_banks,
)
from repro.core.errors import AllocationError, ControllerError
from repro.hic import analyze
from repro.memory.allocation import WORDS_PER_BRAM, allocate


TWO_THREAD_ARRAYS = """
thread a () {
  int table[300];
  int x;
  x = table[0];
}
thread b () {
  int table[300];
  int y;
  y = table[1];
}
"""


class TestFabricPacking:
    def test_interleaved_uses_one_logical_space(self, figure1_checked):
        memory_map = allocate(figure1_checked, fabric_banks=4)
        assert memory_map.bram_names == ["fabric"]
        assert memory_map.fabric_banks == 4
        assert memory_map.fabric_policy == "interleaved"
        # Used words scatter over banks round-robin.
        used = memory_map.bram_fill["fabric"]
        assert sum(memory_map.fabric_bank_fill.values()) == used

    def test_range_spreads_threads_over_banks(self):
        checked = analyze(TWO_THREAD_ARRAYS)
        memory_map = allocate(checked, fabric_banks=2, fabric_policy="range")
        banks_used = {
            placement.base_address // WORDS_PER_BRAM
            for placement in memory_map.placements.values()
            if placement.is_bram and placement.words >= 300
        }
        # Two 300-word tables cannot share one 512-word bank.
        assert banks_used == {0, 1}

    def test_range_uses_access_graph_affinity(self):
        checked = analyze(TWO_THREAD_ARRAYS)
        access, __ = build_memory_graphs(checked)
        memory_map = allocate(
            checked, access=access, fabric_banks=2, fabric_policy="range"
        )
        fills = memory_map.fabric_bank_fill
        assert fills[0] > 0 and fills[1] > 0

    def test_capacity_overflow_is_structured(self, figure1_checked):
        checked = analyze(TWO_THREAD_ARRAYS)
        with pytest.raises(AllocationError) as excinfo:
            allocate(checked, fabric_banks=1)
        error = excinfo.value
        assert error.words_needed is not None
        assert error.words_available == WORDS_PER_BRAM
        assert "1-bank" in str(error)

    def test_unknown_policy_rejected(self, figure1_checked):
        with pytest.raises(ValueError, match="unknown fabric sharding"):
            allocate(figure1_checked, fabric_banks=2, fabric_policy="hashed")

    def test_offchip_spill_is_incompatible(self, figure1_checked):
        with pytest.raises(ValueError, match="allow_offchip"):
            allocate(figure1_checked, fabric_banks=2, allow_offchip=True)

    def test_utilization_accounts_for_all_banks(self, figure1_checked):
        one = allocate(figure1_checked, fabric_banks=1)
        four = allocate(figure1_checked, fabric_banks=4)
        assert one.bram_fill["fabric"] == four.bram_fill["fabric"]
        assert one.utilization("fabric") == pytest.approx(
            4 * four.utilization("fabric")
        )


class TestAllocationError:
    def test_is_a_controller_error_and_a_value_error(self):
        error = AllocationError("boom", variable="v", thread="t")
        assert isinstance(error, ControllerError)
        assert isinstance(error, ValueError)
        assert error.kind == "allocation-error"

    def test_payload_carries_name_and_sizes(self):
        checked = analyze(
            """
thread big () {
  int table[600];
  int x;
  x = table[0];
}
"""
        )
        with pytest.raises(AllocationError) as excinfo:
            allocate(checked)
        error = excinfo.value
        assert error.variable == "table"
        assert error.thread == "big"
        assert error.words_needed == 600
        assert error.words_available == WORDS_PER_BRAM

    def test_describe_includes_the_payload(self):
        error = AllocationError(
            "no room",
            variable="table",
            thread="big",
            words_needed=600,
            words_available=512,
        )
        text = error.describe()
        assert "table" in text and "600" in text and "512" in text

    def test_force_single_bram_raises_structured(self):
        checked = analyze(TWO_THREAD_ARRAYS)
        with pytest.raises(AllocationError) as excinfo:
            allocate(checked, force_single_bram=True)
        assert excinfo.value.words_available == WORDS_PER_BRAM


class TestThreadPartitioning:
    def test_balances_by_access_weight(self, figure1_checked):
        access, __ = build_memory_graphs(figure1_checked)
        assignment = partition_threads_across_banks(access, 2)
        assert set(assignment.values()) <= {0, 1}
        # Every thread with storage appears.
        threads = {thread for thread, __v in access.sizes}
        assert threads <= set(assignment)

    def test_single_bank_collapses(self, figure1_checked):
        access, __ = build_memory_graphs(figure1_checked)
        assignment = partition_threads_across_banks(access, 1)
        assert set(assignment.values()) == {0}

    def test_invalid_bank_count(self, figure1_checked):
        access, __ = build_memory_graphs(figure1_checked)
        with pytest.raises(ValueError):
            partition_threads_across_banks(access, 0)
