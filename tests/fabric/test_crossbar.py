"""Crossbar link latency, batching, and round-robin output arbitration."""

import pytest

from repro.core.controller import MemRequest
from repro.fabric import Crossbar


def request(client, address=0, write=False):
    return MemRequest(client=client, port="A", address=address, write=write)


class TestLinkLatency:
    def test_delivery_waits_for_the_link(self):
        xbar = Crossbar(num_banks=2, link_latency=3)
        xbar.push(0, request("t1"), cycle=10)
        assert xbar.deliveries(10) == {}
        assert xbar.deliveries(12) == {}
        delivered = xbar.deliveries(13)
        assert [r.client for r in delivered[0]] == ["t1"]

    def test_zero_latency_delivers_same_cycle(self):
        xbar = Crossbar(num_banks=1, link_latency=0)
        xbar.push(0, request("t1"), cycle=5)
        assert [r.client for r in xbar.deliveries(5)[0]] == ["t1"]

    def test_delivered_entries_leave_the_queue(self):
        xbar = Crossbar(num_banks=1, link_latency=0)
        xbar.push(0, request("t1"), cycle=0)
        assert xbar.occupancy(0) == 1
        xbar.deliveries(0)
        assert xbar.occupancy(0) == 0
        assert xbar.deliveries(1) == {}


class TestBatching:
    def test_batch_size_caps_deliveries_per_cycle(self):
        xbar = Crossbar(num_banks=1, link_latency=0, batch_size=2)
        for i, client in enumerate(["a", "b", "c"]):
            xbar.push(0, request(client, address=i), cycle=0)
        first = xbar.deliveries(0)[0]
        assert len(first) == 2
        second = xbar.deliveries(1)[0]
        assert len(second) == 1
        assert {r.client for r in first} | {second[0].client} == {"a", "b", "c"}

    def test_banks_batch_independently(self):
        xbar = Crossbar(num_banks=2, link_latency=0, batch_size=1)
        xbar.push(0, request("a"), cycle=0)
        xbar.push(1, request("b"), cycle=0)
        delivered = xbar.deliveries(0)
        assert [r.client for r in delivered[0]] == ["a"]
        assert [r.client for r in delivered[1]] == ["b"]


class TestRoundRobin:
    def test_clients_alternate_at_a_hot_bank(self):
        xbar = Crossbar(num_banks=1, link_latency=0, batch_size=1)
        order = []
        for cycle in range(6):
            # Both clients re-queue a request every cycle.
            xbar.push(0, request("a", address=cycle), cycle)
            xbar.push(0, request("b", address=cycle), cycle)
            delivered = xbar.deliveries(cycle)[0]
            order.append(delivered[0].client)
        # No client is served twice in a row while the other waits.
        assert order[:4] == ["a", "b", "a", "b"]

    def test_queue_order_preserved_within_a_client(self):
        xbar = Crossbar(num_banks=1, link_latency=0, batch_size=4)
        for i in range(3):
            xbar.push(0, request("a", address=i), cycle=0)
        delivered = xbar.deliveries(0)[0]
        assert [r.address for r in delivered] == [0, 1, 2]

    def test_pointer_survives_an_absent_last_grantee(self):
        xbar = Crossbar(num_banks=1, link_latency=0, batch_size=1)
        xbar.push(0, request("b"), cycle=0)
        assert xbar.deliveries(0)[0][0].client == "b"
        # "b" gone; "a" and "c" queued: rotation starts after "b" -> "c".
        xbar.push(0, request("a"), cycle=1)
        xbar.push(0, request("c"), cycle=1)
        assert xbar.deliveries(1)[0][0].client == "c"


class TestStatsAndValidation:
    def test_stats_accumulate(self):
        xbar = Crossbar(num_banks=2, link_latency=1, batch_size=1)
        xbar.push(0, request("a"), cycle=0)
        xbar.push(0, request("b"), cycle=0)
        xbar.deliveries(1)  # one delivered, one waits
        xbar.deliveries(2)
        assert xbar.stats.forwarded == 2
        assert xbar.stats.delivered == 2
        assert xbar.stats.queued_peak == 2
        assert xbar.stats.queue_wait_cycles == 1
        assert xbar.stats.per_bank_delivered == {0: 2}

    def test_reset_clears_everything(self):
        xbar = Crossbar(num_banks=1, link_latency=0)
        xbar.push(0, request("a"), cycle=0)
        xbar.reset()
        assert xbar.occupancy(0) == 0
        assert xbar.stats.forwarded == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_banks": 0},
            {"num_banks": 1, "link_latency": -1},
            {"num_banks": 1, "batch_size": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Crossbar(**kwargs)
