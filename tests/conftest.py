"""Shared fixtures: reference hic programs used across the test suite."""

import pytest

#: The paper's Figure 1 example, verbatim modulo whitespace.
FIGURE1_SOURCE = """
thread t1 () {
  int x1, xtmp, x2;
  #consumer{mt1,[t2,y1],[t3,z1]}
  x1 = f(xtmp, x2);
}

thread t2 () {
  int y1, y2;
  #producer{mt1,[t1,x1]}
  y1 = g(x1, y2);
}

thread t3 () {
  int z1, z2;
  #producer{mt1,[t1,x1]}
  z1 = h(x1, z2);
}
"""


def make_fanout_source(consumers: int) -> str:
    """A single producer feeding ``consumers`` consumer threads — the
    scenario family of the paper's evaluation (1/2, 1/4, 1/8)."""
    parts = ["thread producer () {", "  int shared, tmp;"]
    links = ", ".join(f"[c{i},v{i}]" for i in range(consumers))
    parts.append(f"  #consumer{{d0,{links}}}")
    parts.append("  shared = f(tmp);")
    parts.append("}")
    for i in range(consumers):
        parts.extend(
            [
                f"thread c{i} () {{",
                f"  int v{i}, w{i};",
                "  #producer{d0,[producer,shared]}",
                f"  v{i} = g(shared, w{i});",
                "}",
            ]
        )
    return "\n".join(parts)


#: A two-dependency pipeline: stage1 -> stage2 -> stage3.
PIPELINE_SOURCE = """
thread stage1 () {
  int a, raw;
  #consumer{d1,[stage2,b]}
  a = f(raw);
}

thread stage2 () {
  int b, scratch;
  #producer{d1,[stage1,a]}
  b = g(a, scratch);
  #consumer{d2,[stage3,c]}
  b = h(b);
}

thread stage3 () {
  int c, out;
  #producer{d2,[stage2,b]}
  c = f(b);
  out = c + 1;
}
"""

#: A cyclic dependency where each thread blocks before it produces: deadlock.
DEADLOCK_SOURCE = """
thread ta () {
  int pa, va;
  #producer{db,[tb,pb]}
  va = f(pb);
  #consumer{da,[tb,vb]}
  pa = g(va);
}

thread tb () {
  int pb, vb;
  #producer{da,[ta,pa]}
  vb = f(pa);
  #consumer{db,[ta,va]}
  pb = g(vb);
}
"""

#: A cyclic thread graph that is NOT a deadlock: each thread produces
#: before it consumes, so the cross edges are satisfiable.
CYCLE_NO_DEADLOCK_SOURCE = """
thread ta () {
  int pa, va;
  #consumer{da,[tb,vb]}
  pa = g(va);
  #producer{db,[tb,pb]}
  va = f(pb);
}

thread tb () {
  int pb, vb;
  #consumer{db,[ta,va]}
  pb = g(vb);
  #producer{da,[ta,pa]}
  vb = f(pa);
}
"""


@pytest.fixture
def figure1_source():
    return FIGURE1_SOURCE


@pytest.fixture
def pipeline_source():
    return PIPELINE_SOURCE


@pytest.fixture
def deadlock_source():
    return DEADLOCK_SOURCE


@pytest.fixture
def cycle_no_deadlock_source():
    return CYCLE_NO_DEADLOCK_SOURCE


@pytest.fixture
def figure1_checked(figure1_source):
    from repro.hic import analyze

    return analyze(figure1_source)


@pytest.fixture
def pipeline_checked(pipeline_source):
    from repro.hic import analyze

    return analyze(pipeline_source)
