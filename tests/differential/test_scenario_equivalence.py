"""Differential matrix over the streaming scenario catalogue.

Every catalogued scenario (docs/scenarios.md) must behave identically on
all three simulation kernels, under both channel-synthesis modes: same
architectural state, byte-identical telemetry summaries.  This is the
soak proof behind the FIFO channel lowering — the
:class:`~repro.memory.fifo.FifoChannelController` participates in the
same ``next_wake`` / quiescence contract as the guarded organizations,
so the wheel and compiled kernels must not diverge by a single cycle.

The pipeline scenario's telemetry is additionally frozen as golden
fixtures (``fixtures/scenario_pipeline_{trace,summary}.json``),
mirroring the Figure-1 goldens.  To regenerate after an *intentional*
telemetry change::

    PYTHONPATH=src python tests/differential/test_scenario_equivalence.py
"""

from pathlib import Path

import pytest

from repro.obs.exporters import dumps_chrome_trace, dumps_summary
from repro.scenarios import SCENARIO_NAMES, build_scenario_simulation, get_scenario

try:
    from .conftest import KERNELS, assert_equivalent
except ImportError:  # running as a script for fixture regeneration
    KERNELS = ("reference", "wheel", "compiled")
    assert_equivalent = None

FIXTURES = Path(__file__).parent / "fixtures"
CYCLES = 300

MODES = ("guarded", "fifo")


def run_matrix_cell(name, channel_synthesis):
    scenario = get_scenario(name)
    sims, summaries = [], []
    for kernel in KERNELS:
        __, sim = build_scenario_simulation(
            scenario, channel_synthesis=channel_synthesis, kernel=kernel
        )
        telemetry = sim.attach_telemetry(trace_level="deps")
        sim.run(CYCLES)
        sims.append(sim)
        summaries.append(dumps_summary(telemetry))
    return sims, summaries


@pytest.mark.parametrize("channel_synthesis", MODES)
@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenario_kernels_equivalent(name, channel_synthesis):
    sims, summaries = run_matrix_cell(name, channel_synthesis)
    assert_equivalent(*sims)
    assert summaries[0] == summaries[1] == summaries[2]


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenario_makes_progress(name):
    """Free-running scenarios are live: every sink thread completes
    rounds in either synthesis mode (no accidental deadlock from the
    channel lowering)."""
    scenario = get_scenario(name)
    for mode in MODES:
        __, sim = build_scenario_simulation(scenario, channel_synthesis=mode)
        sim.run(CYCLES)
        for sink in scenario.sink_threads:
            assert sim.executors[sink].stats.rounds_completed > 0, (
                name,
                mode,
                sink,
            )


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_scenario_classification_matches_catalogue(name):
    """The classifier reproduces the catalogue's expected channel
    classes — the per-scenario ground truth of docs/scenarios.md."""
    scenario = get_scenario(name)
    design, __ = build_scenario_simulation(scenario, channel_synthesis="fifo")
    fifo = sorted(
        d.dep_id for d in design.channel_decisions.values() if d.is_fifo
    )
    guarded = sorted(
        d.dep_id for d in design.channel_decisions.values() if not d.is_fifo
    )
    assert fifo == sorted(scenario.expected_fifo)
    assert guarded == sorted(scenario.expected_guarded)


# -- pipeline goldens (mirroring the Figure-1 fixtures) --------------------------------


def traced_pipeline_run(kernel):
    scenario = get_scenario("pipeline")
    __, sim = build_scenario_simulation(
        scenario, channel_synthesis="fifo", kernel=kernel
    )
    telemetry = sim.attach_telemetry(trace_level="deps")
    sim.run(CYCLES)
    return sim, telemetry


@pytest.mark.parametrize("kernel", list(KERNELS))
def test_pipeline_trace_matches_golden(kernel):
    __, telemetry = traced_pipeline_run(kernel)
    golden = (FIXTURES / "scenario_pipeline_trace.json").read_text()
    assert dumps_chrome_trace(telemetry) == golden


@pytest.mark.parametrize("kernel", list(KERNELS))
def test_pipeline_summary_matches_golden(kernel):
    __, telemetry = traced_pipeline_run(kernel)
    golden = (FIXTURES / "scenario_pipeline_summary.json").read_text()
    assert dumps_summary(telemetry) == golden


def test_pipeline_is_never_skippable():
    """Honesty check: the FIFO pipeline runs hot — some channel endpoint
    is always grantable (the source free-runs and every channel drains),
    so the wheel kernel must execute every cycle rather than skipping.
    That conservatism is what makes the byte-identical goldens above
    possible."""
    sim, __ = traced_pipeline_run("wheel")
    assert sim.kernel.cycles_skipped == 0
    assert sim.kernel.cycles_executed == CYCLES


def _regenerate():
    __, telemetry = traced_pipeline_run("reference")
    (FIXTURES / "scenario_pipeline_trace.json").write_text(
        dumps_chrome_trace(telemetry)
    )
    (FIXTURES / "scenario_pipeline_summary.json").write_text(
        dumps_summary(telemetry)
    )
    print(f"regenerated fixtures in {FIXTURES}")


if __name__ == "__main__":
    _regenerate()
