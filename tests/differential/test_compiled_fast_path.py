"""Differential coverage of the compiled kernel's *generated* path.

The main matrix attaches telemetry, so the compiled kernel runs its
interpreted escape hatch there.  These cells attach nothing but the
(``mutates_only_rx``) traffic injector, assert the same full-surface
equivalence against the reference kernel, and — critically — assert
that every cycle actually ran through the generated tick function.
Without the counters the equivalence claim would be vacuous: a kernel
that silently fell back would pass by construction.
"""

import pytest

from repro.core import Organization
from repro.net import forwarding_functions, forwarding_source

from .conftest import assert_equivalent, attach_traffic, build_pair

CYCLES = 1500
SEED = 11

ORGANIZATIONS = [
    Organization.ARBITRATED,
    Organization.EVENT_DRIVEN,
    Organization.LOCK_BASELINE,
]


def run_cell(organization, num_banks, rate):
    reference_sim, compiled_sim = build_pair(
        forwarding_source(2),
        forwarding_functions(),
        organization=organization,
        num_banks=num_banks,
        kernels=("reference", "compiled"),
    )
    for sim in (reference_sim, compiled_sim):
        attach_traffic(sim, rate, SEED)
        sim.run(CYCLES)
    return reference_sim, compiled_sim


@pytest.mark.parametrize(
    "organization", ORGANIZATIONS, ids=[o.value for o in ORGANIZATIONS]
)
@pytest.mark.parametrize("num_banks", [0, 4], ids=["banks0", "banks4"])
@pytest.mark.parametrize("rate", [0.02, 0.9], ids=["sparse", "dense"])
def test_compiled_fast_path_equivalence(organization, num_banks, rate):
    reference_sim, compiled_sim = run_cell(organization, num_banks, rate)
    assert_equivalent(reference_sim, compiled_sim)
    kernel = compiled_sim.kernel
    assert kernel.cycle == CYCLES
    # every cycle came out of the generated tick function
    assert kernel.cycles_compiled == CYCLES
    assert kernel.cycles_interpreted == 0
    assert kernel.bind_error is None


def test_fast_path_survives_split_runs():
    """State flushes back to the live objects between ``run`` calls, so
    a span-split run must land in the identical final state."""
    reference_sim, compiled_sim = build_pair(
        forwarding_source(2),
        forwarding_functions(),
        organization=Organization.ARBITRATED,
        kernels=("reference", "compiled"),
    )
    for sim in (reference_sim, compiled_sim):
        attach_traffic(sim, 0.9, SEED)
    reference_sim.run(CYCLES)
    for span in (1, 7, 500, CYCLES - 508):
        compiled_sim.run(span)
    assert compiled_sim.kernel.cycle == CYCLES
    assert compiled_sim.kernel.cycles_compiled == CYCLES
    assert_equivalent(reference_sim, compiled_sim)


def test_escape_hatch_is_per_call():
    """Attaching an observer mid-run flips to interpreted ticks;
    detaching it resumes the generated path — with state carried across
    both seams byte-for-byte."""
    reference_sim, compiled_sim = build_pair(
        forwarding_source(2),
        forwarding_functions(),
        organization=Organization.ARBITRATED,
        kernels=("reference", "compiled"),
    )
    for sim in (reference_sim, compiled_sim):
        attach_traffic(sim, 0.9, SEED)
    reference_sim.run(CYCLES)

    kernel = compiled_sim.kernel
    compiled_sim.run(500)
    assert kernel.cycles_compiled == 500

    class _NullObserver:
        def on_cycle(self, cycle, sim_kernel):
            pass

    kernel.observer = _NullObserver()
    compiled_sim.run(500)
    assert kernel.cycles_interpreted == 500

    kernel.observer = None
    compiled_sim.run(CYCLES - 1000)
    assert kernel.cycles_compiled == CYCLES - 500
    assert_equivalent(reference_sim, compiled_sim)
