"""Golden-trace regression: the Figure-1 example's telemetry, frozen.

``fixtures/figure1_{trace,summary}.json`` were generated once from the
reference kernel (300 cycles, ``--trace-level deps``) and committed.
Both kernels must reproduce them byte-for-byte: the Chrome trace pins
every dependency-lifecycle event to its exact cycle, so any drift in
the simulator, the controllers, or the exporters' serialization shows
up as a byte diff.

To regenerate after an *intentional* telemetry change::

    PYTHONPATH=src python tests/differential/test_golden_traces.py
"""

from pathlib import Path

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.obs.exporters import dumps_chrome_trace, dumps_summary

FIXTURES = Path(__file__).parent / "fixtures"
CYCLES = 300

FIGURE1_SOURCE = """
thread t1 () {
  int x1, xtmp, x2;
  #consumer{mt1,[t2,y1],[t3,z1]}
  x1 = f(xtmp, x2);
}

thread t2 () {
  int y1, y2;
  #producer{mt1,[t1,x1]}
  y1 = g(x1, y2);
}

thread t3 () {
  int z1, z2;
  #producer{mt1,[t1,x1]}
  z1 = h(x1, z2);
}
"""


def traced_run(kernel):
    design = compile_design(
        FIGURE1_SOURCE, organization=Organization.ARBITRATED
    )
    sim = build_simulation(design, kernel=kernel)
    telemetry = sim.attach_telemetry(trace_level="deps")
    sim.run(CYCLES)
    return sim, telemetry


@pytest.mark.parametrize("kernel", ["reference", "wheel", "compiled"])
def test_chrome_trace_matches_golden(kernel):
    __, telemetry = traced_run(kernel)
    golden = (FIXTURES / "figure1_trace.json").read_text()
    assert dumps_chrome_trace(telemetry) == golden


@pytest.mark.parametrize("kernel", ["reference", "wheel", "compiled"])
def test_summary_matches_golden(kernel):
    __, telemetry = traced_run(kernel)
    golden = (FIXTURES / "figure1_summary.json").read_text()
    assert dumps_summary(telemetry) == golden


def test_figure1_is_never_skippable():
    """Figure 1 runs *hot*: its three threads settle into a 3-cycle
    produce-consume loop where some guarded request is always grantable,
    so the wrapper never reports quiescence.  The wheel kernel must
    recognize that and execute every cycle — conservatism is what makes
    the byte-identical traces above possible."""
    sim, __ = traced_run("wheel")
    assert sim.kernel.cycles_skipped == 0
    assert sim.kernel.cycles_executed == CYCLES


def _regenerate():
    __, telemetry = traced_run("reference")
    (FIXTURES / "figure1_trace.json").write_text(
        dumps_chrome_trace(telemetry)
    )
    (FIXTURES / "figure1_summary.json").write_text(dumps_summary(telemetry))
    print(f"regenerated fixtures in {FIXTURES}")


if __name__ == "__main__":
    _regenerate()
