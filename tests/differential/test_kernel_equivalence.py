"""Differential matrix: reference vs fast kernels across the design space.

Every cell compiles one design per kernel, runs all of them under
identical seeded traffic (and, in the fault cells, an identical fault
campaign), and asserts the complete architectural state matches:
consumer values, executor statistics, controller latency samples /
:class:`ControllerStats`, memory images, blocked-request sets, and the
dependency-lifecycle span summary bytes.  The matrix covers all three
memory organizations, the paper's single-address-space flow plus 1- and
4-bank fabrics, and no-fault vs seeded-fault campaigns.

Telemetry is attached in every cell, so the compiled kernel exercises
its interpreted escape hatch here — the equivalence claim covers the
fallback path; ``test_compiled_fast_path.py`` covers the generated one.
"""

import pytest

from repro.core import Organization
from repro.faults import (
    ProducerStall,
    RequestDrop,
    RequestDuplicate,
    SeuBitFlip,
)
from repro.net import forwarding_functions, forwarding_source
from repro.obs.exporters import dumps_summary

from .conftest import assert_equivalent, attach_traffic, build_pair

CYCLES = 1500
RATE = 0.02
SEED = 11

ORGANIZATIONS = [
    Organization.ARBITRATED,
    Organization.EVENT_DRIVEN,
    Organization.LOCK_BASELINE,
]

#: 0 = the paper's single-address-space flow; 1 and 4 exercise the
#: sharded fabric (degenerate single bank and the cross-bank router).
BANKS = [0, 1, 4]


def seeded_campaign(bram):
    """A deterministic mixed campaign against ``bram`` — one of each
    disturbance family, spread across the run."""
    return [
        SeuBitFlip(at_cycle=200, bram=bram, address=1, bit=3),
        ProducerStall(at_cycle=400, client="classify", duration=120),
        RequestDrop(at_cycle=700, bram=bram, count=2),
        RequestDuplicate(at_cycle=900, bram=bram),
    ]


def run_cell(organization, num_banks, with_faults, dep_home="address"):
    source = forwarding_source(4)
    functions = forwarding_functions()
    sims = build_pair(
        source,
        functions,
        organization=organization,
        num_banks=num_banks,
        dep_home=dep_home,
    )
    bram = "fabric" if num_banks else "bram0"
    summaries = []
    for sim in sims:
        telemetry = sim.attach_telemetry(trace_level="deps")
        attach_traffic(sim, RATE, SEED)
        if with_faults:
            sim.inject_faults(seeded_campaign(bram))
        sim.run(CYCLES)
        summaries.append(dumps_summary(telemetry))
    return sims, summaries


@pytest.mark.parametrize(
    "organization", ORGANIZATIONS, ids=[o.value for o in ORGANIZATIONS]
)
@pytest.mark.parametrize("num_banks", BANKS, ids=lambda n: f"banks{n}")
@pytest.mark.parametrize(
    "with_faults", [False, True], ids=["no-fault", "seeded-fault"]
)
def test_kernel_equivalence(organization, num_banks, with_faults):
    sims, summaries = run_cell(organization, num_banks, with_faults)
    reference_sim, wheel_sim, compiled_sim = sims
    assert_equivalent(reference_sim, wheel_sim, compiled_sim)
    for summary in summaries[1:]:
        assert summary == summaries[0], "span summaries diverged"
    # All kernels simulated the same number of cycles; the wheel kernel
    # reached it with executed + skipped, and the compiled kernel — with
    # its observer attached — through the interpreted escape hatch.
    for sim in sims:
        assert sim.kernel.cycle == CYCLES
    assert (
        wheel_sim.kernel.cycles_executed + wheel_sim.kernel.cycles_skipped
        == CYCLES
    )
    assert compiled_sim.kernel.cycles_interpreted == CYCLES
    assert compiled_sim.kernel.cycles_compiled == 0


@pytest.mark.parametrize(
    "organization",
    [Organization.ARBITRATED, Organization.EVENT_DRIVEN],
    ids=["arbitrated", "event_driven"],
)
def test_wheel_actually_skips(organization):
    """The equivalence result is vacuous if the wheel never skips: the
    guarded organizations at this traffic rate are mostly idle, so a
    healthy fast kernel must skip a large fraction of the run."""
    (__, wheel_sim, __), __ = run_cell(organization, 0, False)
    assert wheel_sim.kernel.cycles_skipped > CYCLES // 4
    assert wheel_sim.kernel.cycles_executed < CYCLES


def test_lock_baseline_never_skips_under_contention():
    """The lock baseline's spin counters burn every contended cycle —
    skipping would silently drop spin statistics, so the controller must
    pin cycle-by-cycle execution whenever a request is blocked."""
    (__, wheel_sim, __), __ = run_cell(Organization.LOCK_BASELINE, 0, False)
    # Spinning dominates this workload; the wheel may only skip the
    # genuinely request-free stretches.
    assert wheel_sim.kernel.cycles_executed > 0
    total = wheel_sim.kernel.cycles_executed + wheel_sim.kernel.cycles_skipped
    assert total == CYCLES


def test_cross_bank_dep_home_spread():
    """``dep_home="spread"`` routes guards away from their data bank,
    exercising the cross-bank router on every guarded access."""
    sims, summaries = run_cell(
        Organization.ARBITRATED, 4, False, dep_home="spread"
    )
    assert_equivalent(*sims)
    for summary in summaries[1:]:
        assert summary == summaries[0]
