"""Shared rig for the cross-kernel differential harness.

Every fast kernel's correctness claim is *cycle equivalence*: for any
compiled design, traffic schedule, and fault campaign, the wheel and
compiled kernels must leave the simulation in exactly the state the
reference kernel would — same consumer values, same executor
statistics, same controller latency samples, same memory images, same
telemetry summaries.  These helpers build the simulations identically
and extract the full comparison surface.
"""

from repro.core import ControllerStats, Organization
from repro.flow import build_simulation, compile_design
from repro.net import BernoulliTraffic

#: every kernel backend; index 0 is the semantics-defining reference
KERNELS = ("reference", "wheel", "compiled")


def build_pair(
    source,
    functions=None,
    *,
    organization=Organization.ARBITRATED,
    num_banks=0,
    dep_home="address",
    kernels=KERNELS,
    **compile_kwargs,
):
    """Compile ``source`` once per kernel; one simulation each, in
    ``kernels`` order (the reference kernel first)."""
    sims = []
    for kernel in kernels:
        design = compile_design(
            source,
            organization=organization,
            num_banks=num_banks,
            dep_home=dep_home,
            **compile_kwargs,
        )
        sims.append(build_simulation(design, functions=functions, kernel=kernel))
    return tuple(sims)


def attach_traffic(sim, rate, seed):
    """Seeded Bernoulli traffic on every ingress, one stream per rx."""
    for index, rx in enumerate(sim.rx.values()):
        generator = BernoulliTraffic(rate=rate, seed=seed + index)
        sim.kernel.add_pre_cycle_hook(generator.attach(rx))


def architectural_state(sim):
    """Everything the two kernels must agree on after a run.

    Each entry is independently comparable so a mismatch pinpoints the
    diverging layer (interfaces, executors, controllers, or memory).
    """
    return {
        "tx": {name: tx.messages for name, tx in sim.tx.items()},
        "executor_stats": {
            name: (
                executor.stats.cycles,
                executor.stats.stall_cycles,
                executor.stats.advances,
                executor.stats.rounds_completed,
                dict(executor.stats.state_visits),
            )
            for name, executor in sim.executors.items()
        },
        "envs": {
            name: dict(executor.env)
            for name, executor in sim.executors.items()
        },
        "latency_samples": {
            name: controller.latency_samples
            for name, controller in sim.controllers.items()
        },
        "controller_stats": {
            name: ControllerStats.from_waits(controller.waits_for())
            for name, controller in sim.controllers.items()
        },
        "memory": {
            name: controller.bram.snapshot()
            for name, controller in sim.controllers.items()
        },
        "blocked": {
            name: controller.blocked
            for name, controller in sim.controllers.items()
        },
    }


def assert_equivalent(reference_sim, *candidate_sims):
    """Assert every candidate matches the reference on the full
    architectural comparison surface."""
    reference = architectural_state(reference_sim)
    for candidate_sim in candidate_sims:
        candidate = architectural_state(candidate_sim)
        for key in reference:
            assert candidate[key] == reference[key], (
                f"kernels diverged on {key!r}"
            )
