"""Shared rig for the reference-vs-wheel differential harness.

The wheel kernel's correctness claim is *cycle equivalence*: for any
compiled design, traffic schedule, and fault campaign, the fast kernel
must leave the simulation in exactly the state the reference kernel
would — same consumer values, same executor statistics, same controller
latency samples, same memory images, same telemetry summaries.  These
helpers build the two simulations identically and extract the full
comparison surface.
"""

from repro.core import ControllerStats, Organization
from repro.flow import build_simulation, compile_design
from repro.net import BernoulliTraffic

KERNELS = ("reference", "wheel")


def build_pair(
    source,
    functions=None,
    *,
    organization=Organization.ARBITRATED,
    num_banks=0,
    dep_home="address",
    **compile_kwargs,
):
    """Compile ``source`` twice and return ``(reference_sim, wheel_sim)``."""
    sims = []
    for kernel in KERNELS:
        design = compile_design(
            source,
            organization=organization,
            num_banks=num_banks,
            dep_home=dep_home,
            **compile_kwargs,
        )
        sims.append(build_simulation(design, functions=functions, kernel=kernel))
    return tuple(sims)


def attach_traffic(sim, rate, seed):
    """Seeded Bernoulli traffic on every ingress, one stream per rx."""
    for index, rx in enumerate(sim.rx.values()):
        generator = BernoulliTraffic(rate=rate, seed=seed + index)
        sim.kernel.add_pre_cycle_hook(generator.attach(rx))


def architectural_state(sim):
    """Everything the two kernels must agree on after a run.

    Each entry is independently comparable so a mismatch pinpoints the
    diverging layer (interfaces, executors, controllers, or memory).
    """
    return {
        "tx": {name: tx.messages for name, tx in sim.tx.items()},
        "executor_stats": {
            name: (
                executor.stats.cycles,
                executor.stats.stall_cycles,
                executor.stats.advances,
                executor.stats.rounds_completed,
                dict(executor.stats.state_visits),
            )
            for name, executor in sim.executors.items()
        },
        "envs": {
            name: dict(executor.env)
            for name, executor in sim.executors.items()
        },
        "latency_samples": {
            name: controller.latency_samples
            for name, controller in sim.controllers.items()
        },
        "controller_stats": {
            name: ControllerStats.from_waits(controller.waits_for())
            for name, controller in sim.controllers.items()
        },
        "memory": {
            name: controller.bram.snapshot()
            for name, controller in sim.controllers.items()
        },
        "blocked": {
            name: controller.blocked
            for name, controller in sim.controllers.items()
        },
    }


def assert_equivalent(reference_sim, wheel_sim):
    """Assert the full architectural comparison surface matches."""
    reference = architectural_state(reference_sim)
    wheel = architectural_state(wheel_sim)
    for key in reference:
        assert wheel[key] == reference[key], f"kernels diverged on {key!r}"
