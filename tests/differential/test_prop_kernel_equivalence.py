"""Property test: kernel equivalence under randomized scenarios.

Hypothesis drives the differential harness through random corners of
the configuration space — traffic seed and rate, memory organization,
bank count, dependency homing — asserting the invariant the hand-picked
matrix cannot exhaust: for *any* scenario, the wheel and compiled
kernels' consumer reads and final memory images are bit-identical to
the reference kernel's.  Counterexamples shrink to the smallest
diverging scenario.
"""

from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import forwarding_functions, forwarding_source

from .conftest import assert_equivalent, attach_traffic

CYCLES = 600


@lru_cache(maxsize=None)
def compiled(organization, num_banks, dep_home):
    """Compilation is pure; cache it so examples only pay for simulation."""
    return compile_design(
        forwarding_source(2),
        organization=organization,
        num_banks=num_banks,
        dep_home=dep_home,
    )


scenarios = st.fixed_dictionaries(
    {
        "organization": st.sampled_from(
            [
                Organization.ARBITRATED,
                Organization.EVENT_DRIVEN,
                Organization.LOCK_BASELINE,
            ]
        ),
        "num_banks": st.sampled_from([0, 1, 2, 4]),
        "dep_home": st.sampled_from(["address", "spread"]),
        "seed": st.integers(min_value=0, max_value=2**16),
        "rate": st.floats(min_value=0.002, max_value=0.12),
    }
)


@settings(max_examples=25, deadline=None)
@given(scenarios)
def test_random_scenarios_are_cycle_equivalent(scenario):
    design = compiled(
        scenario["organization"], scenario["num_banks"], scenario["dep_home"]
    )
    functions = forwarding_functions()
    sims = []
    for kernel in ("reference", "wheel", "compiled"):
        sim = build_simulation(design, functions=functions, kernel=kernel)
        attach_traffic(sim, scenario["rate"], scenario["seed"])
        sim.run(CYCLES)
        sims.append(sim)
    reference_sim, wheel_sim, compiled_sim = sims
    # The full surface subsumes the headline claims: identical consumer
    # reads (executor envs + tx messages) and final memory images.
    assert_equivalent(reference_sim, wheel_sim, compiled_sim)
    assert (
        wheel_sim.kernel.cycles_executed + wheel_sim.kernel.cycles_skipped
        == CYCLES
    )
    assert (
        compiled_sim.kernel.cycles_compiled
        + compiled_sim.kernel.cycles_interpreted
        == CYCLES
    )
