"""Unit tests: channel classification rules and the FIFO controller.

The five decision rules of :mod:`repro.analysis.channels` each get a
minimal program that trips exactly that rule; the FIFO controller's
MemoryController contract (grant semantics, next_wake quiescence,
wait classification, watchdog recovery, reset) is pinned directly.
"""

import pytest

from repro.analysis.channels import (
    ChannelClass,
    classify_channels,
    fifo_channel_name,
    fifo_lowered_variables,
)
from repro.core.controller import MemRequest
from repro.flow import build_simulation, compile_design
from repro.hic.semantic import analyze
from repro.memory.bram import BlockRam
from repro.memory.fifo import DEFAULT_FIFO_DEPTH, FifoChannelController
from repro.scenarios import pipeline_source, scenario_functions


def classify_source(source):
    return classify_channels(analyze(source))


STREAM_SOURCE = pipeline_source(2)


class TestClassificationRules:
    def test_clean_stream_is_fifo(self):
        decisions = classify_source(STREAM_SOURCE)
        (decision,) = decisions.values()
        assert decision.channel_class is ChannelClass.FIFO
        assert decision.reason == "single-writer in-order stream"

    def test_rule1_broadcast_is_guarded(self):
        source = """
thread producer () {
  int value, seed;
  seed = step(seed);
  #consumer{d,[a,av],[b,bv]}
  value = mix(seed);
}
thread a () {
  int av;
  #producer{d,[producer,value]}
  av = mix(value);
}
thread b () {
  int bv;
  #producer{d,[producer,value]}
  bv = mix(value);
}
"""
        (decision,) = classify_source(source).values()
        assert decision.channel_class is ChannelClass.GUARDED
        assert "broadcast" in decision.reason

    def test_rule4_producer_readback_is_guarded(self):
        source = """
thread producer () {
  int value, echo;
  #consumer{d,[sink,sv]}
  value = step(value);
  echo = mix(value);
}
thread sink () {
  int sv;
  #producer{d,[producer,value]}
  sv = mix(value);
}
"""
        (decision,) = classify_source(source).values()
        assert decision.channel_class is ChannelClass.GUARDED
        assert "reads" in decision.reason

    def test_rule5_consumer_extra_read_is_guarded(self):
        source = """
thread producer () {
  int value, seed;
  seed = step(seed);
  #consumer{d,[sink,sv]}
  value = mix(seed);
}
thread sink () {
  int sv, extra;
  #producer{d,[producer,value]}
  sv = mix(value);
  extra = mix(value);
}
"""
        (decision,) = classify_source(source).values()
        assert decision.channel_class is ChannelClass.GUARDED
        assert "outside the consuming statement" in decision.reason

    def test_helper_mappings(self):
        decisions = classify_source(STREAM_SOURCE)
        lowered = fifo_lowered_variables(decisions)
        ((thread, var), dep_id) = next(iter(lowered.items()))
        assert fifo_channel_name(dep_id) == f"fifo_{dep_id}"
        assert thread == "stage0"
        assert var == "stage0_out"


def make_channel(depth=4):
    checked = analyze(STREAM_SOURCE)
    dep = checked.dependencies[0]
    return FifoChannelController(
        BlockRam(fifo_channel_name(dep.dep_id)), dep, depth=depth
    ), dep


def push_request(dep, data):
    return MemRequest(
        client=dep.producer_thread,
        port="B",
        address=0,
        write=True,
        data=data,
        dep_id=dep.dep_id,
    )


def pop_request(dep):
    return MemRequest(
        client=dep.consumers[0].thread,
        port="C",
        address=0,
        write=False,
        dep_id=dep.dep_id,
    )


class TestFifoControllerContract:
    def test_rejects_broadcast_dependency(self):
        checked = analyze(
            """
thread p () {
  int v, s;
  s = step(s);
  #consumer{d,[a,x],[b,y]}
  v = mix(s);
}
thread a () {
  int x;
  #producer{d,[p,v]}
  x = mix(v);
}
thread b () {
  int y;
  #producer{d,[p,v]}
  y = mix(v);
}
"""
        )
        with pytest.raises(ValueError, match="single-consumer"):
            FifoChannelController(BlockRam("f"), checked.dependencies[0])

    def test_non_fallthrough_handoff(self):
        """A value pushed in cycle t is poppable in t+1, never t — the
        one-cycle handoff the guarded organizations also exhibit."""
        channel, dep = make_channel()
        channel.submit(push_request(dep, 42))
        channel.submit(pop_request(dep))
        results = channel.arbitrate(0)
        assert results[dep.producer_thread].granted
        assert dep.consumers[0].thread not in results
        channel.submit(pop_request(dep))
        results = channel.arbitrate(1)
        assert results[dep.consumers[0].thread].data == 42

    def test_backpressure_at_depth(self):
        channel, dep = make_channel(depth=2)
        for cycle in range(3):
            channel.submit(push_request(dep, cycle))
            channel.arbitrate(cycle)
        assert channel.occupancy == 2
        assert channel.full
        assert channel.pushed_values == [0, 1]
        # The blocked push classifies as a guard stall (backpressure).
        blocked = channel.blocked[0].request
        assert channel.classify_wait(blocked)[0] == "guard-stall"

    def test_empty_pop_blocks_and_classifies(self):
        channel, dep = make_channel()
        channel.submit(pop_request(dep))
        results = channel.arbitrate(0)
        assert results == {}
        assert channel.classify_wait(channel.blocked[0].request)[0] == (
            "blocked-read"
        )

    def test_next_wake_quiescence(self):
        """next_wake mirrors grantability exactly: a starved pop keeps
        the channel quiescent, a satisfiable one wakes it at the next
        cycle — the wheel kernel's skip-safety contract."""
        channel, dep = make_channel()
        channel.submit(pop_request(dep))
        channel.arbitrate(0)
        assert channel.next_wake(0) is None  # empty: pop can never grant
        channel.submit(push_request(dep, 7))
        channel.submit(pop_request(dep))
        channel.arbitrate(1)
        assert channel.next_wake(1) == 2  # now non-empty: pop wakes

    def test_force_unblock_starved_pop(self):
        channel, dep = make_channel()
        channel.submit(pop_request(dep))
        channel.arbitrate(0)
        assert channel.force_unblock(channel.blocked[0].request, 1)
        assert not channel.empty  # a zero datum was synthesized

    def test_force_unblock_backpressured_push(self):
        channel, dep = make_channel(depth=1)
        channel.submit(push_request(dep, 5))
        channel.arbitrate(0)
        channel.submit(push_request(dep, 6))
        channel.arbitrate(1)
        assert channel.force_unblock(channel.blocked[0].request, 2)
        assert not channel.full  # the oldest datum was dropped

    def test_reset_restores_empty_channel(self):
        channel, dep = make_channel()
        channel.submit(push_request(dep, 9))
        channel.arbitrate(0)
        channel.reset()
        assert channel.empty
        assert channel.head == channel.tail == 0
        assert channel.pushed_values == []

    def test_default_depth(self):
        channel, __ = make_channel(depth=DEFAULT_FIFO_DEPTH)
        assert channel.depth == DEFAULT_FIFO_DEPTH


class TestFlowIntegration:
    def test_fifo_lowering_removes_guarded_bram(self):
        """The acceptance-criteria shape: the all-FIFO pipeline has no
        guarded BRAM left, only channel storage."""
        design = compile_design(STREAM_SOURCE, channel_synthesis="fifo")
        assert design.memory_map.bram_names == []
        assert design.memory_map.fifo_names == ["fifo_ch0"]
        assert sorted(design.wrapper_modules) == ["fifo_ch0"]

    def test_fifo_area_much_smaller_than_guarded(self):
        guarded = compile_design(STREAM_SOURCE, channel_synthesis="guarded")
        fifo = compile_design(STREAM_SOURCE, channel_synthesis="fifo")
        guarded_slices = sum(
            guarded.area_report(n).slices for n in guarded.wrapper_modules
        )
        fifo_slices = sum(
            fifo.area_report(n).slices for n in fifo.wrapper_modules
        )
        assert fifo_slices < guarded_slices

    def test_fifo_channel_has_timing_report(self):
        design = compile_design(STREAM_SOURCE, channel_synthesis="fifo")
        report = design.timing_report("fifo_ch0")
        assert report.fmax_mhz > 0
        assert "channel_handshake" in report.critical_path

    def test_fifo_rejects_fabric(self):
        with pytest.raises(ValueError, match="fabric"):
            compile_design(
                STREAM_SOURCE, channel_synthesis="fifo", num_banks=2
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="channel_synthesis"):
            compile_design(STREAM_SOURCE, channel_synthesis="bogus")

    def test_verilog_includes_fifo_channel(self):
        design = compile_design(STREAM_SOURCE, channel_synthesis="fifo")
        text = design.verilog()
        assert "module fifo_channel_ch0" in text

    def test_guarded_default_is_unchanged(self):
        """Default compiles carry no channel artifacts at all — the
        pre-existing flow is byte-for-byte untouched."""
        design = compile_design(STREAM_SOURCE)
        assert design.channel_synthesis == "guarded"
        assert design.channel_decisions == {}
        assert design.fifo_deps == {}
        assert design.memory_map.fifo_names == []

    def test_simulation_uses_fifo_controller(self):
        design = compile_design(STREAM_SOURCE, channel_synthesis="fifo")
        sim = build_simulation(design, scenario_functions())
        assert isinstance(
            sim.controllers["fifo_ch0"], FifoChannelController
        )
        sim.run(100)
        assert sim.controllers["fifo_ch0"].in_order()
