"""Integration soak: sustained traffic through the forwarder.

Long mixed-traffic runs across all three controller implementations,
checking conservation and liveness invariants that only surface over many
produce-consume cycles:

* no packet is created or destroyed by the pipeline (forwarded + dropped
  (TTL) + in-flight backlog == injected);
* every egress thread consumes every decision (no starvation);
* controller latency samples stay self-consistent over thousands of
  events.
"""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import (
    BurstyTraffic,
    PoissonTraffic,
    demo_table,
    forwarding_functions,
    forwarding_source,
)

CYCLES = 6000


def soak(organization, generator, consumers=4):
    design = compile_design(
        forwarding_source(consumers), organization=organization
    )
    sim = build_simulation(design, functions=forwarding_functions(demo_table()))
    hook = generator.attach(sim.rx["eth_in"])
    sim.kernel.add_pre_cycle_hook(hook)
    sim.run(CYCLES)
    return sim, hook


@pytest.mark.parametrize(
    "organization",
    [Organization.ARBITRATED, Organization.EVENT_DRIVEN,
     Organization.LOCK_BASELINE],
    ids=lambda o: o.value,
)
def test_packet_conservation(organization):
    generator = PoissonTraffic(mean_gap=25.0, seed=77)
    sim, hook = soak(organization, generator)
    forwarded = sim.tx["eth_out"].count
    backlog = sim.rx["eth_in"].backlog
    in_pipeline = hook.injected - forwarded - backlog
    # At most one message is in flight inside the classifier (per §2).
    assert 0 <= in_pipeline <= 1
    assert forwarded > 0


@pytest.mark.parametrize(
    "organization",
    [Organization.ARBITRATED, Organization.EVENT_DRIVEN],
    ids=lambda o: o.value,
)
def test_no_consumer_starves_under_bursts(organization):
    generator = BurstyTraffic(burst_len=6, gap_len=30, seed=5)
    sim, __ = soak(organization, generator)
    rounds = [
        sim.executors[f"egress{i}"].stats.rounds_completed for i in range(4)
    ]
    assert min(rounds) > 0
    assert max(rounds) - min(rounds) <= 1


def test_latency_samples_consistent_over_long_run():
    generator = PoissonTraffic(mean_gap=15.0, seed=3)
    sim, __ = soak(Organization.ARBITRATED, generator)
    controller = sim.controllers["bram0"]
    assert len(controller.latency_samples) > 500
    for sample in controller.latency_samples:
        assert sample.grant_cycle >= sample.issue_cycle
        assert 0 <= sample.issue_cycle < CYCLES
    # dn accounting: total consumer reads ~= 4x producer writes.
    writes = len(controller.waits_for(port="D"))
    reads = len(controller.waits_for(port="C"))
    assert abs(reads - 4 * writes) <= 4


def test_ingress_backlog_bounded_at_sustainable_rate():
    # One packet every ~25 cycles vs a ~13-cycle pipeline round: the queue
    # must not grow without bound.
    generator = PoissonTraffic(mean_gap=25.0, seed=11)
    sim, __ = soak(Organization.ARBITRATED, generator)
    assert sim.rx["eth_in"].backlog < 20
