"""Integration: the §4/§6 scalability and reuse claims.

"The arbitrated memory organization is simpler to implement since the base
architecture is fixed and only the multiplexing required to support new
consumer thread needs to be added and no changes need to be made to the
thread related state machine(s). ... [For the event-driven organization]
if one needs to add new consumer threads, we have to modify both the
multiplexing structure ... as well as the state machine related to the
thread."
"""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.hic.pragmas import ConsumerRef, Dependency
from repro.rtl import (
    WrapperParams,
    generate_arbitrated_wrapper,
    generate_event_driven_wrapper,
)
from tests.conftest import make_fanout_source


def fanout_dep(consumers):
    return Dependency(
        "d0",
        "prod",
        "x",
        tuple(ConsumerRef(f"c{i}", f"v{i}") for i in range(consumers)),
    )


class TestArbitratedScalability:
    def test_adding_a_consumer_changes_only_muxing(self):
        base = generate_arbitrated_wrapper(WrapperParams(consumers=4))
        grown = generate_arbitrated_wrapper(WrapperParams(consumers=5))
        # Fixed base architecture: same flip-flop count...
        assert base.total_ffs() == grown.total_ffs() == 66
        # ...only LUTs (the muxing) change.
        assert grown.total_luts() > base.total_luts()

    def test_existing_thread_fsms_unchanged_when_consumer_added(self):
        # Synthesize the 4- and 5-consumer programs; threads present in
        # both must have identical state machines (no regeneration).
        small = compile_design(make_fanout_source(4))
        large = compile_design(make_fanout_source(5))
        for name in ("c0", "c1", "c2", "c3"):
            fsm_small = small.fsms[name]
            fsm_large = large.fsms[name]
            assert fsm_small.state_count == fsm_large.state_count
            assert sorted(fsm_small.states) == sorted(fsm_large.states)

    def test_same_wrapper_interface_grows_by_one_port(self):
        base = generate_arbitrated_wrapper(WrapperParams(consumers=4))
        grown = generate_arbitrated_wrapper(WrapperParams(consumers=5))
        req_base = next(p for p in base.ports if p.name == "portc_req")
        req_grown = next(p for p in grown.ports if p.name == "portc_req")
        assert req_grown.width == req_base.width + 1


class TestEventDrivenRegeneration:
    def test_adding_a_consumer_changes_registers_too(self):
        base = generate_event_driven_wrapper(
            WrapperParams(consumers=4), [fanout_dep(4)]
        )
        grown = generate_event_driven_wrapper(
            WrapperParams(consumers=5), [fanout_dep(5)]
        )
        # The selection/event state changes: FF count moves.
        assert grown.total_ffs() > base.total_ffs()

    def test_slot_schedule_length_changes(self):
        base = generate_event_driven_wrapper(
            WrapperParams(consumers=4), [fanout_dep(4)]
        )
        grown = generate_event_driven_wrapper(
            WrapperParams(consumers=5), [fanout_dep(5)]
        )
        base_req = next(p for p in base.ports if p.name == "portb_req")
        grown_req = next(p for p in grown.ports if p.name == "portb_req")
        assert grown_req.width == grown_req.width
        assert grown_req.width == base_req.width + 1

    def test_consumer_chain_timing_shifts_for_existing_consumers(self):
        # Adding a consumer does not change earlier consumers' slot ranks,
        # but it lengthens the producer's round trip: the schedule grows.
        from repro.core import ModuloSchedule

        small = ModuloSchedule.build([fanout_dep(4)])
        large = ModuloSchedule.build([fanout_dep(5)])
        for i in range(4):
            assert small.consumer_rank("d0", f"c{i}") == large.consumer_rank(
                "d0", f"c{i}"
            )
        assert len(large) == len(small) + 1


class TestMultiBramDesigns:
    def test_dependencies_split_across_brams(self):
        # Two producers with big arrays that cannot share one BRAM.
        source = """
        thread pa () { int big_a[300], xa, ta;
          ta = big_a[0];
          #consumer{da,[ca,va]}
          xa = f(ta);
        }
        thread ca () { int va;
          #producer{da,[pa,xa]}
          va = g(xa);
        }
        thread pb () { int big_b[300], xb, tb;
          tb = big_b[0];
          #consumer{db,[cb,vb]}
          xb = f(tb);
        }
        thread cb () { int vb;
          #producer{db,[pb,xb]}
          vb = g(xb);
        }
        """
        design = compile_design(source)
        assert design.memory_map.bram_count() == 2
        # Each BRAM gets its own wrapper guarding its own dependency.
        total_deps = sum(len(deps) for deps in design.dep_groups.values())
        assert total_deps == 2
        assert len(design.wrapper_modules) == 2

        sim = build_simulation(design)
        sim.run(300)
        assert sim.executors["ca"].stats.rounds_completed > 0
        assert sim.executors["cb"].stats.rounds_completed > 0

    def test_per_bram_controllers_are_independent(self):
        source = """
        thread pa () { int big_a[300], xa, ta;
          ta = big_a[0];
          #consumer{da,[ca,va]}
          xa = f(ta);
        }
        thread ca () { int va;
          #producer{da,[pa,xa]}
          va = g(xa);
        }
        thread pb () { int big_b[300], xb, tb;
          tb = big_b[0];
          #consumer{db,[cb,vb]}
          xb = f(tb);
        }
        thread cb () { int vb;
          #producer{db,[pb,xb]}
          vb = g(xb);
        }
        """
        for org in (Organization.ARBITRATED, Organization.EVENT_DRIVEN):
            design = compile_design(source, organization=org)
            sim = build_simulation(design)
            sim.run(300)
            assert len(sim.controllers) == 2
            for controller in sim.controllers.values():
                assert controller.latency_samples
