"""Integration: every combination of flow flags composes cleanly.

The flow's options (organization, optimize, infer_pragmas, allow_offchip,
deplist_entries) are orthogonal; this matrix run catches interactions the
per-feature tests would miss.
"""

import itertools

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.sim import default_intrinsic

#: Pragma-free source exercising inference, arrays (BRAM), big array
#: (off-chip when allowed... kept small here so every combination works),
#: and straight-line compute chains (packing fodder).
SOURCE = """
thread producer () {
  int shared, t, scratch[4];
  t = t + 1;
  scratch[t % 4] = t;
  shared = f(t, scratch[0]);
}
thread worker () {
  int v, acc, a, b;
  v = g(shared);
  a = v + 1;
  b = a + 2;
  acc = acc + b;
}
"""

FLAGS = list(
    itertools.product(
        [Organization.ARBITRATED, Organization.EVENT_DRIVEN],
        [False, True],  # optimize
        [False, True],  # allow_offchip
    )
)


@pytest.mark.parametrize(
    "organization,optimize,allow_offchip",
    FLAGS,
    ids=[
        f"{org.value}-opt{int(o)}-off{int(x)}" for org, o, x in FLAGS
    ],
)
def test_flag_combinations(organization, optimize, allow_offchip):
    design = compile_design(
        SOURCE,
        organization=organization,
        optimize=optimize,
        allow_offchip=allow_offchip,
        infer_pragmas=True,
    )
    # Inference found the shared variable.
    assert [d.dep_id for d in design.checked.dependencies] == ["auto_shared"]

    sim = build_simulation(design)
    sim.run(400)
    worker = sim.executors["worker"]
    assert worker.stats.rounds_completed > 0

    # The value chain is intact regardless of flags: acc accumulated
    # g(f(t, s)) + 3 values.
    assert worker.env["acc"] != 0
    assert worker.env["b"] == worker.env["a"] + 2


def test_flag_results_agree_across_optimization():
    results = []
    for optimize in (False, True):
        design = compile_design(SOURCE, infer_pragmas=True, optimize=optimize)
        sim = build_simulation(design)
        sim.run(
            2000,
            until=lambda k, s=sim: (
                s.executors["worker"].stats.rounds_completed >= 10
            ),
        )
        assert sim.executors["worker"].stats.rounds_completed >= 10
        # Compare the value consumed on the 10th round via v's history —
        # approximate by checking v corresponds to some f/g chain value.
        results.append(sim.executors["worker"].env["b"] - 3)
    f, g = default_intrinsic("f"), default_intrinsic("g")
    for value in results:
        candidates = {g(f(t, 0)) for t in range(1, 60)} | {
            g(f(t, s)) for t in range(1, 60) for s in (0, 1, 4)
        }
        # v = g(shared); b = v + 3 checked above; just sanity: nonzero.
        assert value != 0
