"""Integration: multiple dependencies on a single address (§2/§3.1).

"The additional identifier, mt1, in the pragmas is used to identify
multiple dependencies on same variable in threads" and "for multiple
producer-consumer dependencies on a single address, we store the
associated dependency number in each producer thread."

The program below produces the same variable twice per round under two
dependency ids with different consumer sets; the dependency list must keep
the two produce-consume cycles separate.
"""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.memory import allocate
from repro.memory.deplist import DependencyList
from repro.sim import default_intrinsic

TWO_DEPS_ONE_VAR = """
thread a () {
  int p, t;
  t = t + 1;
  #consumer{d1,[b,v]}
  p = f(t);
  #consumer{d2,[c,w]}
  p = f2(t);
}
thread b () {
  int v;
  #producer{d1,[a,p]}
  v = g(p);
}
thread c () {
  int w;
  #producer{d2,[a,p]}
  w = g2(p);
}
"""


class TestSharedAddressEntries:
    def test_two_entries_same_address(self):
        design = compile_design(TWO_DEPS_ONE_VAR)
        deplist = design.deplists["bram0"]
        assert len(deplist) == 2
        addresses = {entry.base_address for entry in deplist.entries}
        assert len(addresses) == 1  # both guard p's address

    def test_match_for_write_selects_by_producer(self, figure1_checked):
        design = compile_design(TWO_DEPS_ONE_VAR)
        deplist = design.deplists["bram0"]
        address = deplist.entries[0].base_address
        entry = deplist.match_for_write(address, "a")
        assert entry is not None
        assert deplist.match_for_write(address, "ghost") is None

    def test_match_for_read_selects_by_consumer(self):
        design = compile_design(TWO_DEPS_ONE_VAR)
        deplist = design.deplists["bram0"]
        address = deplist.entries[0].base_address
        entry_b = deplist.match_for_read(address, "b")
        entry_c = deplist.match_for_read(address, "c")
        assert entry_b is not None and entry_c is not None
        assert entry_b.dep_id != entry_c.dep_id

    def test_armed_entry_preferred_for_read(self):
        design = compile_design(TWO_DEPS_ONE_VAR)
        deplist = design.deplists["bram0"]
        address = deplist.entries[0].base_address
        # Arm d2 only; a read by c must resolve to the armed d2 entry.
        deplist.entry_for("d2").outstanding = 1
        assert deplist.match_for_read(address, "c").dep_id == "d2"


class TestSharedAddressSimulation:
    @pytest.mark.parametrize(
        "organization",
        [Organization.ARBITRATED, Organization.EVENT_DRIVEN],
        ids=lambda o: o.value,
    )
    def test_both_consumers_progress(self, organization):
        design = compile_design(TWO_DEPS_ONE_VAR, organization=organization)
        sim = build_simulation(design)
        sim.run(600)
        assert sim.executors["b"].stats.rounds_completed > 0
        assert sim.executors["c"].stats.rounds_completed > 0

    def test_each_consumer_sees_its_own_produce(self):
        # b consumes the d1 write (f), c consumes the d2 write (f2).
        # Because the writes hit the same address back to back, b must
        # read before the d2 write lands, which the guard serializes.
        design = compile_design(TWO_DEPS_ONE_VAR)
        sim = build_simulation(design)
        sim.run(600)
        f = default_intrinsic("f")
        f2 = default_intrinsic("f2")
        g = default_intrinsic("g")
        g2 = default_intrinsic("g2")
        v = sim.executors["b"].env["v"]
        w = sim.executors["c"].env["w"]
        # v is g(f(t)) and w is g2(f2(t)) for some round counters t;
        # check membership over plausible rounds rather than a fixed t.
        candidates_v = {g(f(t)) for t in range(1, 250)}
        candidates_w = {g2(f2(t)) for t in range(1, 250)}
        assert v in candidates_v
        assert w in candidates_w

    def test_round_counts_stay_balanced(self):
        design = compile_design(TWO_DEPS_ONE_VAR)
        sim = build_simulation(design)
        sim.run(800)
        rounds = [
            sim.executors[name].stats.rounds_completed
            for name in ("a", "b", "c")
        ]
        assert max(rounds) - min(rounds) <= 1
