"""Integration: the paper's Figure 1 example through the whole flow (E6).

Compiles the verbatim example, checks deadlock freedom, simulates it under
all three controller implementations, and verifies the shared-memory
dataflow semantics: every consumer observes exactly the value the producer
wrote, once per produce-consume cycle, in both organizations.
"""

import pytest

from repro.analysis import check_deadlock
from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.sim import default_intrinsic


@pytest.fixture(params=list(Organization), ids=lambda o: o.value)
def organization(request):
    return request.param


class TestFigure1EndToEnd:
    def test_compiles_deadlock_free(self, figure1_source):
        design = compile_design(figure1_source)
        assert not check_deadlock(design.checked).deadlocked

    def test_dataflow_semantics(self, figure1_source, organization):
        design = compile_design(figure1_source, organization=organization)
        sim = build_simulation(design)
        sim.run(400)

        f = default_intrinsic("f")
        g = default_intrinsic("g")
        h = default_intrinsic("h")
        x1 = f(0, 0)  # xtmp and x2 are uninitialized registers (0)
        assert sim.executors["t2"].env["y1"] == g(x1, 0)
        assert sim.executors["t3"].env["z1"] == h(x1, 0)

    def test_all_threads_progress(self, figure1_source, organization):
        design = compile_design(figure1_source, organization=organization)
        sim = build_simulation(design)
        sim.run(400)
        for name in ("t1", "t2", "t3"):
            assert sim.executors[name].stats.rounds_completed > 0

    def test_consume_count_matches_produce_count(self, figure1_source):
        design = compile_design(figure1_source)
        sim = build_simulation(design)
        sim.run(400)
        controller = sim.controllers["bram0"]
        writes = len(controller.waits_for(port="D"))
        reads = len(controller.waits_for(port="C"))
        # Two consumers per write; allow one in-flight cycle at the end.
        assert writes > 0
        assert abs(reads - 2 * writes) <= 2

    def test_organizations_agree_on_values(self, figure1_source):
        results = {}
        for org in (Organization.ARBITRATED, Organization.EVENT_DRIVEN,
                    Organization.LOCK_BASELINE):
            design = compile_design(figure1_source, organization=org)
            sim = build_simulation(design)
            sim.run(600)
            results[org] = (
                sim.executors["t2"].env["y1"],
                sim.executors["t3"].env["z1"],
            )
        values = set(results.values())
        assert len(values) == 1, f"organizations disagree: {results}"

    def test_verilog_emits_for_both_wrappers(self, figure1_source):
        for org in (Organization.ARBITRATED, Organization.EVENT_DRIVEN):
            design = compile_design(figure1_source, organization=org)
            text = design.verilog()
            assert "endmodule" in text
            assert "thread_t1" in text and "thread_t3" in text
