"""Integration: the event-driven organization's idle-producer stall.

EXPERIMENTS.md documents this finding: with several producers
modulo-scheduled on one BRAM, an idle producer stalls the whole schedule —
consistent with §3.2's static model and the reason the paper's own
evaluation uses a single producer per BRAM.  The arbitrated organization,
being demand-driven, keeps the live pair running.

The test gates one producer behind a network interface that never receives
a packet.
"""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design

#: src0 free-runs; src1 blocks forever on an empty interface.
IDLE_PRODUCER = """
#interface{quiet, gige}

thread src0 () {
  int data0, seq0;
  seq0 = seq0 + 1;
  #consumer{d0,[sink0,v0]}
  data0 = f(seq0);
}
thread sink0 () {
  int v0;
  #producer{d0,[src0,data0]}
  v0 = g(data0);
}

thread src1 () {
  message m;
  int data1, t1;
  receive(m, quiet);
  t1 = m.payload;
  #consumer{d1,[sink1,v1]}
  data1 = f(t1);
}
thread sink1 () {
  int v1;
  #producer{d1,[src1,data1]}
  v1 = g(data1);
}
"""


def run(organization, cycles=600):
    design = compile_design(IDLE_PRODUCER, organization=organization)
    sim = build_simulation(design)
    sim.run(cycles)
    return sim


class TestIdleProducerStall:
    def test_arbitrated_live_pair_keeps_running(self):
        sim = run(Organization.ARBITRATED)
        assert sim.executors["sink0"].stats.rounds_completed > 10
        assert sim.executors["sink1"].stats.rounds_completed == 0

    def test_event_driven_schedule_stalls_everyone(self):
        sim = run(Organization.EVENT_DRIVEN)
        # The slot table order is d0's pair first, then d1's: src0's first
        # write happens, sink0 reads once, then the schedule parks on
        # src1's slot forever — at most one round leaks through.
        assert sim.executors["sink0"].stats.rounds_completed <= 1
        assert sim.executors["sink1"].stats.rounds_completed == 0

    def test_stall_disappears_when_producer_fed(self):
        design = compile_design(
            IDLE_PRODUCER, organization=Organization.EVENT_DRIVEN
        )
        sim = build_simulation(design)

        def feed(cycle, kernel):
            if cycle % 10 == 0:
                sim.rx["quiet"].push({"payload": cycle})

        sim.kernel.add_pre_cycle_hook(feed)
        sim.run(600)
        assert sim.executors["sink0"].stats.rounds_completed > 5
        assert sim.executors["sink1"].stats.rounds_completed > 5
