"""Synthesis correctness: FSM simulation vs a direct AST interpreter.

The strongest check on the synthesis pipeline: a small reference
interpreter executes one round of each thread directly over the AST (no
FSMs, no memory map, no controllers); the FSM simulation of the same
program, run to the same number of completed rounds, must leave every
variable with the same value.

Covers single-thread programs with the full statement surface (nested
control flow, loops, break/continue, arrays, compound assignment) plus
hypothesis-generated structured programs.
"""

from hypothesis import given, settings, strategies as st

from repro.flow import build_simulation, compile_design
from repro.hic import ast, parse
from repro.sim.executor import default_intrinsic, to_signed, to_unsigned


class ReferenceInterpreter:
    """Executes one thread round directly over the AST."""

    def __init__(self, thread: ast.Thread, rounds: int = 1):
        self.thread = thread
        self.env: dict[str, int] = {}
        self.arrays: dict[str, list[int]] = {}
        self._functions: dict[str, object] = {}
        for decl in thread.declarations():
            for name, size in decl.declarators():
                if size > 0:
                    self.arrays[name] = [0] * size
                else:
                    self.env[name] = 0
        for __ in range(rounds):
            try:
                self._block(thread.body)
            except _ReturnSignal:
                pass

    # -- statements ---------------------------------------------------------------

    def _block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, (ast.VarDecl,)):
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr)
        elif isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.If):
            if self._eval(stmt.cond):
                self._block(stmt.then_body)
            elif stmt.else_body is not None:
                self._block(stmt.else_body)
        elif isinstance(stmt, ast.Case):
            selector = self._eval(stmt.selector)
            for arm in stmt.arms:
                if any(self._eval(v) == selector for v in arm.values):
                    self._block(arm.body)
                    return
            if stmt.default is not None:
                self._block(stmt.default)
        elif isinstance(stmt, ast.While):
            guard = 0
            while self._eval(stmt.cond):
                try:
                    self._block(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                guard += 1
                assert guard < 10000, "runaway loop in reference interpreter"
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._assign(stmt.init)
            guard = 0
            while stmt.cond is None or self._eval(stmt.cond):
                try:
                    self._block(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self._assign(stmt.step)
                guard += 1
                assert guard < 10000
        elif isinstance(stmt, ast.Break):
            raise _BreakSignal
        elif isinstance(stmt, ast.Continue):
            raise _ContinueSignal
        elif isinstance(stmt, ast.Return):
            raise _ReturnSignal
        else:
            raise TypeError(f"unsupported statement {type(stmt).__name__}")

    def _assign(self, stmt: ast.Assign) -> None:
        value = self._eval(stmt.value)
        if stmt.op != "=":
            current = self._read_lvalue(stmt.target)
            value = self._binop(stmt.op[:-1], current, value)
        self._write_lvalue(stmt.target, value)

    def _read_lvalue(self, target) -> int:
        if isinstance(target, ast.Name):
            return self.env.get(target.ident, 0)
        if isinstance(target, ast.Index):
            index = to_signed(self._eval(target.index))
            return self.arrays[target.base.ident][index]
        raise TypeError("unsupported lvalue")

    def _write_lvalue(self, target, value: int) -> None:
        if isinstance(target, ast.Name):
            self.env[target.ident] = to_unsigned(value)
        elif isinstance(target, ast.Index):
            index = to_signed(self._eval(target.index))
            self.arrays[target.base.ident][index] = to_unsigned(value)
        else:
            raise TypeError("unsupported lvalue")

    # -- expressions --------------------------------------------------------------

    def _eval(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.IntLiteral):
            return to_unsigned(expr.value)
        if isinstance(expr, ast.CharLiteral):
            return expr.value & 0xFF
        if isinstance(expr, ast.BoolLiteral):
            return int(expr.value)
        if isinstance(expr, ast.Name):
            return self.env.get(expr.ident, 0)
        if isinstance(expr, ast.Index):
            index = to_signed(self._eval(expr.index))
            return self.arrays[expr.base.ident][index]
        if isinstance(expr, ast.Unary):
            operand = self._eval(expr.operand)
            if expr.op == "-":
                return to_unsigned(-to_signed(operand))
            if expr.op == "!":
                return int(operand == 0)
            return to_unsigned(~operand)
        if isinstance(expr, ast.Binary):
            if expr.op == "&&":
                return int(
                    bool(self._eval(expr.left)) and bool(self._eval(expr.right))
                )
            if expr.op == "||":
                return int(
                    bool(self._eval(expr.left)) or bool(self._eval(expr.right))
                )
            return self._binop(
                expr.op, self._eval(expr.left), self._eval(expr.right)
            )
        if isinstance(expr, ast.Conditional):
            if self._eval(expr.cond):
                return self._eval(expr.then_value)
            return self._eval(expr.else_value)
        if isinstance(expr, ast.Call):
            fn = self._functions.setdefault(
                expr.callee, default_intrinsic(expr.callee)
            )
            return to_unsigned(fn(*[self._eval(a) for a in expr.args]))
        raise TypeError(f"unsupported expression {type(expr).__name__}")

    @staticmethod
    def _binop(op: str, left: int, right: int) -> int:
        sl, sr = to_signed(left), to_signed(right)
        if op == "+":
            return to_unsigned(sl + sr)
        if op == "-":
            return to_unsigned(sl - sr)
        if op == "*":
            return to_unsigned(sl * sr)
        if op == "/":
            return 0xFFFFFFFF if sr == 0 else to_unsigned(int(sl / sr))
        if op == "%":
            return 0 if sr == 0 else to_unsigned(sl - int(sl / sr) * sr)
        if op == "<<":
            return to_unsigned(left << (right & 31))
        if op == ">>":
            return to_unsigned(left >> (right & 31))
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(sl < sr)
        if op == "<=":
            return int(sl <= sr)
        if op == ">":
            return int(sl > sr)
        if op == ">=":
            return int(sl >= sr)
        raise ValueError(op)


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    pass


def assert_equivalent(source: str, rounds: int = 1, max_cycles: int = 3000):
    """One-round FSM simulation must match the reference interpreter."""
    program = parse(source)
    thread = program.threads[0]
    reference = ReferenceInterpreter(thread, rounds=rounds)

    design = compile_design(source)
    sim = build_simulation(design)
    sim.run(
        max_cycles,
        until=lambda k: sim.executors[thread.name].stats.rounds_completed
        >= rounds,
    )
    executor = sim.executors[thread.name]
    assert executor.stats.rounds_completed >= rounds, "FSM never finished"

    for name, expected in reference.env.items():
        assert executor.env.get(name, 0) == expected, (
            f"{name}: fsm={executor.env.get(name, 0)} ref={expected}"
        )
    mm = design.memory_map
    bram = sim.controllers["bram0"].bram if "bram0" in sim.controllers else None
    for name, values in reference.arrays.items():
        placement = mm.placement(thread.name, name)
        for i, expected in enumerate(values):
            actual = bram.peek(placement.base_address + i)
            assert actual == expected, f"{name}[{i}]"


FIXED_PROGRAMS = [
    # nested if within loop
    """
    thread t () {
      int i, odd, even;
      for (i = 0; i < 10; i = i + 1) {
        if (i % 2 == 1) { odd = odd + i; } else { even = even + i; }
      }
    }
    """,
    # while with break and continue
    """
    thread t () {
      int i, s;
      i = 0; s = 0;
      while (1) {
        i = i + 1;
        if (i > 10) { break; }
        if (i % 3 == 0) { continue; }
        s = s + i;
      }
    }
    """,
    # case dispatch inside a loop (the hic state-machine idiom)
    """
    thread t () {
      int state, ticks, work;
      for (ticks = 0; ticks < 6; ticks = ticks + 1) {
        case (state) {
          of 0: { work = work + 1; state = 1; }
          of 1: { work = work + 10; state = 2; }
          default: { state = 0; }
        }
      }
    }
    """,
    # array reverse-ish manipulation
    """
    thread t () {
      int a[8], i, sum;
      for (i = 0; i < 8; i = i + 1) { a[i] = i * i; }
      for (i = 0; i < 8; i = i + 1) { sum = sum + a[7 - i]; }
    }
    """,
    # compound assignments and shifts
    """
    thread t () {
      int x, y;
      x = 1;
      x <<= 4;
      x += 7;
      y = x >> 2;
      x ^= y;
      x %= 100;
    }
    """,
    # nested loops
    """
    thread t () {
      int i, j, acc;
      for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 3; j = j + 1) {
          acc = acc + i * j;
        }
      }
    }
    """,
    # calls mixed with control flow
    """
    thread t () {
      int x, y;
      x = f(3);
      if (x > 0) { y = g(x, 2); } else { y = h(x); }
      y = y ? y : 1;
    }
    """,
]


class TestFixedPrograms:
    def test_all_fixed_programs_equivalent(self):
        for source in FIXED_PROGRAMS:
            assert_equivalent(source)

    def test_multi_round_accumulation(self):
        source = "thread t () { int n, s; n = n + 1; s = s + n; }"
        assert_equivalent(source, rounds=5)


@st.composite
def structured_programs(draw):
    """Small structured programs over ints a..d."""
    names = ["a", "b", "c", "d"]
    #: "d" is reserved as the for-loop counter; mutating it inside a loop
    #: body could make the loop non-terminating.
    targets = ["a", "b", "c"]
    lines = ["int a, b, c, d;"]
    for __ in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(["assign", "if", "for"]))
        target = draw(st.sampled_from(targets))
        left = draw(st.sampled_from(names))
        k = draw(st.integers(min_value=0, max_value=9))
        op = draw(st.sampled_from(["+", "-", "*", "^"]))
        if kind == "assign":
            lines.append(f"{target} = {left} {op} {k};")
        elif kind == "if":
            other = draw(st.sampled_from(names))
            lines.append(
                f"if ({left} < {k}) {{ {target} = {target} + 1; }} "
                f"else {{ {target} = {other} {op} {k}; }}"
            )
        else:
            bound = draw(st.integers(min_value=1, max_value=5))
            lines.append(
                f"for (d = 0; d < {bound}; d = d + 1) "
                f"{{ {target} = {target} {op} {max(1, k)}; }}"
            )
    body = "\n  ".join(lines)
    return f"thread t () {{\n  {body}\n}}"


@settings(max_examples=25, deadline=None)
@given(structured_programs())
def test_random_structured_programs_equivalent(source):
    assert_equivalent(source)
