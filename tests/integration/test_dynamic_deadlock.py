"""Dynamic deadlock detection, and its agreement with the static check.

The static analysis (:mod:`repro.analysis.deadlock`) rejects
``DEADLOCK_SOURCE`` at compile time.  If the check is bypassed (as a
corrupted or hand-patched configuration would), the built design really
does deadlock at runtime — and the watchdog must turn that silent hang
into a structured, attributable error.  Both detectors must agree on both
the deadlocking program and the cyclic-but-safe control program.
"""

import pytest

from repro.analysis.deadlock import check_deadlock
from repro.core import Organization, RuntimeDeadlockError
from repro.faults import Watchdog
from repro.flow import build_simulation, compile_design
from repro.hic import analyze
from tests.conftest import CYCLE_NO_DEADLOCK_SOURCE, DEADLOCK_SOURCE


def build_unchecked(source, organization=Organization.ARBITRATED):
    design = compile_design(
        source, organization=organization, check_deadlock=False
    )
    return build_simulation(design)


class TestAgreementOnDeadlock:
    def test_static_check_flags_it(self):
        assert check_deadlock(analyze(DEADLOCK_SOURCE)).deadlocked

    def test_watchdog_aborts_with_structured_error(self):
        sim = build_unchecked(DEADLOCK_SOURCE)
        Watchdog(
            read_timeout=10_000, deadlock_window=50, policy="abort"
        ).attach(sim)
        with pytest.raises(RuntimeDeadlockError) as exc_info:
            sim.run(2_000)
        error = exc_info.value
        assert error.stalled_cycles == 50
        assert error.cycle is not None and error.cycle < 2_000
        assert "runtime-deadlock" in error.describe()

    def test_warn_policy_reports_instead_of_hanging_silently(self):
        sim = build_unchecked(DEADLOCK_SOURCE)
        watchdog = Watchdog(
            read_timeout=10_000, deadlock_window=50, policy="warn-continue"
        ).attach(sim)
        sim.run(300)
        kinds = {event.kind for event in watchdog.events}
        assert "system-deadlock" in kinds

    def test_read_timeout_also_sees_the_stuck_consumers(self):
        sim = build_unchecked(DEADLOCK_SOURCE)
        watchdog = Watchdog(
            read_timeout=40, deadlock_window=10_000, policy="warn-continue"
        ).attach(sim)
        sim.run(300)
        assert any(
            event.kind == "blocked-read-timeout" for event in watchdog.events
        )


class TestAgreementOnSafeCycle:
    def test_static_check_passes(self):
        assert not check_deadlock(analyze(CYCLE_NO_DEADLOCK_SOURCE)).deadlocked

    def test_watchdog_stays_quiet(self):
        sim = build_unchecked(CYCLE_NO_DEADLOCK_SOURCE)
        watchdog = Watchdog(
            read_timeout=64, deadlock_window=128, policy="abort"
        ).attach(sim)
        result = sim.run(1_000)
        assert result.cycles_run == 1_000
        assert not watchdog.tripped
