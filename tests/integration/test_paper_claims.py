"""Integration: the paper's evaluation claims, checked end-to-end.

Each test corresponds to a sentence of §4 (or §3) of the paper; the
benchmarks regenerate the full tables, these tests pin the *claims*.
"""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.fpga import estimate_area, estimate_timing, overhead_fraction
from repro.net import (
    BernoulliTraffic,
    CORE_FORWARDING_SLICES,
    OVERHEAD_BAND,
    forwarding_functions,
    forwarding_source,
    multi_pair_source,
)
from repro.sim.probes import PostWriteLatencyProbe

SCENARIOS = (2, 4, 8)


def wrapper_report(consumers, organization):
    design = compile_design(
        forwarding_source(consumers, with_io=False), organization=organization
    )
    return design, design.area_report("bram0"), design.timing_report("bram0")


class TestTable1Claims:
    """§4 Table 1 — arbitrated organization area."""

    def test_ff_constant_at_66(self):
        ffs = [
            wrapper_report(n, Organization.ARBITRATED)[1].ffs
            for n in SCENARIOS
        ]
        assert ffs == [66, 66, 66]

    def test_lut_grows_monotonically(self):
        luts = [
            wrapper_report(n, Organization.ARBITRATED)[1].luts
            for n in SCENARIOS
        ]
        assert luts[0] < luts[1] < luts[2]

    def test_slices_grow_monotonically(self):
        slices = [
            wrapper_report(n, Organization.ARBITRATED)[1].slices
            for n in SCENARIOS
        ]
        assert slices[0] < slices[1] < slices[2]


class TestTable2Claims:
    """§4 Table 2 — event-driven organization area."""

    def test_area_grows_with_consumers(self):
        reports = [
            wrapper_report(n, Organization.EVENT_DRIVEN)[1] for n in SCENARIOS
        ]
        assert reports[0].luts < reports[1].luts < reports[2].luts
        assert reports[0].slices < reports[2].slices


class TestFrequencyClaims:
    """§4 in-text: 158/130/~125 MHz arbitrated, 177/136/129 event-driven,
    all against a 125 MHz target."""

    def test_every_scenario_meets_125mhz(self):
        for org in (Organization.ARBITRATED, Organization.EVENT_DRIVEN):
            for n in SCENARIOS:
                __, __, timing = wrapper_report(n, org)
                assert timing.meets_target, (org, n, timing.fmax_mhz)

    def test_frequency_decreases_with_consumers(self):
        for org in (Organization.ARBITRATED, Organization.EVENT_DRIVEN):
            fmax = [wrapper_report(n, org)[2].fmax_mhz for n in SCENARIOS]
            assert fmax[0] > fmax[1] > fmax[2]

    def test_event_driven_is_faster(self):
        for n in SCENARIOS:
            arb = wrapper_report(n, Organization.ARBITRATED)[2].fmax_mhz
            ed = wrapper_report(n, Organization.EVENT_DRIVEN)[2].fmax_mhz
            assert ed > arb


class TestOverheadClaim:
    """§4: "the area overhead can vary from 5-20%" of the ~1000-slice
    core forwarding function."""

    def test_overhead_band(self):
        low, high = OVERHEAD_BAND
        for n in SCENARIOS:
            report = wrapper_report(n, Organization.ARBITRATED)[1]
            fraction = overhead_fraction(report, CORE_FORWARDING_SLICES)
            assert low <= fraction <= high


class TestDeterminismClaim:
    """§3.1/§3.2: arbitrated consumer-read latency is non-deterministic
    when multiple producer-consumer pairs share a BRAM; the event-driven
    organization fixes post-write latency."""

    def contention_run(self, organization, cycles=3000):
        source = multi_pair_source(pairs=3, consumers_per_pair=2)
        design = compile_design(source, organization=organization)
        sim = build_simulation(design)
        sim.run(cycles)
        return PostWriteLatencyProbe(sim.controllers["bram0"])

    def test_arbitrated_latency_varies_under_contention(self):
        probe = self.contention_run(Organization.ARBITRATED)
        assert not probe.all_deterministic()
        assert probe.max_jitter() > 0

    def test_event_driven_post_write_latency_fixed(self):
        probe = self.contention_run(Organization.EVENT_DRIVEN)
        assert probe.all_deterministic()
        assert probe.max_jitter() == 0


class TestLockBaselineClaim:
    """§1 motivation: the guarded ports eliminate the lock-protocol
    overhead a hand-built shared-memory design pays."""

    def test_wrapper_outperforms_locks(self):
        cycles = 1500
        rounds = {}
        for org in (Organization.ARBITRATED, Organization.LOCK_BASELINE):
            design = compile_design(
                forwarding_source(4, with_io=False), organization=org
            )
            sim = build_simulation(design)
            sim.run(cycles)
            rounds[org] = sim.executors["egress0"].stats.rounds_completed
        assert rounds[Organization.ARBITRATED] > 2 * rounds[
            Organization.LOCK_BASELINE
        ]

    def test_lock_overhead_accounted(self):
        design = compile_design(
            forwarding_source(2, with_io=False),
            organization=Organization.LOCK_BASELINE,
        )
        sim = build_simulation(design)
        sim.run(800)
        stats = sim.controllers["bram0"].stats
        assert stats.useful_accesses > 0
        assert stats.overhead_per_access >= 3.0
