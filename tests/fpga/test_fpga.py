"""Unit tests for the FPGA device, packing, area, and timing models."""

import pytest

from repro.fpga import (
    PAPER_TARGET_MHZ,
    XC2VP20,
    FabricTiming,
    compare_organizations,
    device,
    estimate_area,
    estimate_design,
    estimate_timing,
    overhead_fraction,
    pack,
)
from repro.hic.pragmas import ConsumerRef, Dependency
from repro.rtl import (
    WrapperParams,
    generate_arbitrated_wrapper,
    generate_design,
    generate_event_driven_wrapper,
)


def fanout_dep(consumers):
    return Dependency(
        "d0",
        "prod",
        "x",
        tuple(ConsumerRef(f"c{i}", f"v{i}") for i in range(consumers)),
    )


class TestDevice:
    def test_xc2vp20_resources(self):
        assert XC2VP20.slices == 9280
        assert XC2VP20.bram_blocks == 88
        assert XC2VP20.ppc_cores == 2

    def test_lookup(self):
        assert device("XC2VP30").slices == 13696

    def test_unknown_part(self):
        with pytest.raises(KeyError):
            device("XC7A100T")

    def test_fits(self):
        assert XC2VP20.fits(slices=5430, brams=10)
        assert not XC2VP20.fits(slices=100000)

    def test_fabric_timing_monotone(self):
        timing = FabricTiming()
        assert timing.period_ns(5) < timing.period_ns(10)
        assert timing.fmax_mhz(5) > timing.fmax_mhz(10)


class TestPacking:
    def test_lut_limited(self):
        result = pack(luts=100, ffs=20)
        assert result.lut_limited
        assert result.slices >= 50

    def test_ff_limited(self):
        result = pack(luts=10, ffs=100)
        assert not result.lut_limited
        assert result.slices >= 50

    def test_zero_resources(self):
        assert pack(0, 0).slices == 0

    def test_perfect_efficiency(self):
        assert pack(luts=100, ffs=100, efficiency=1.0).slices == 50

    def test_efficiency_inflates(self):
        loose = pack(luts=100, ffs=0, efficiency=0.5).slices
        tight = pack(luts=100, ffs=0, efficiency=1.0).slices
        assert loose == 2 * tight

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            pack(-1, 0)
        with pytest.raises(ValueError):
            pack(1, 1, efficiency=0.0)


class TestAreaEstimation:
    def test_wrapper_report_row(self):
        m = generate_arbitrated_wrapper(WrapperParams(consumers=2))
        report = estimate_area(m)
        luts, ffs, slices = report.table_row()
        assert ffs == 66
        assert luts > 0 and slices > 0

    def test_overhead_in_paper_band(self):
        # §4: "the area overhead can vary from 5-20%" of a ~1000-slice core.
        for n in (2, 4, 8):
            report = estimate_area(
                generate_arbitrated_wrapper(WrapperParams(consumers=n))
            )
            fraction = overhead_fraction(report, core_slices=1000)
            assert 0.05 <= fraction <= 0.20

    def test_overhead_requires_positive_core(self):
        report = estimate_area(
            generate_arbitrated_wrapper(WrapperParams(consumers=2))
        )
        with pytest.raises(ValueError):
            overhead_fraction(report, core_slices=0)

    def test_design_utilization(self):
        arb = generate_arbitrated_wrapper(WrapperParams(consumers=2))
        top = generate_design("top", [arb], [])
        util = estimate_design(top)
        assert util.fits
        assert 0 < util.slice_utilization < 0.05
        assert util.total.brams == 1
        assert "XC2VP20" in util.render()


class TestTimingEstimation:
    def test_all_scenarios_meet_125mhz(self):
        # §4: every case achieved the 125 MHz target.
        for n in (2, 4, 8):
            arb = estimate_timing(
                generate_arbitrated_wrapper(WrapperParams(consumers=n))
            )
            assert arb.meets_target
            assert arb.target_mhz == PAPER_TARGET_MHZ

    def test_fmax_decreases_with_consumers(self):
        fmax = [
            estimate_timing(
                generate_arbitrated_wrapper(WrapperParams(consumers=n))
            ).fmax_mhz
            for n in (2, 4, 8)
        ]
        assert fmax[0] > fmax[1] > fmax[2]

    def test_event_driven_faster_than_arbitrated(self):
        # §4: 177/136/129 MHz (event-driven) vs 158/130/~125 (arbitrated).
        for n in (2, 4, 8):
            arb = generate_arbitrated_wrapper(WrapperParams(consumers=n))
            ed = generate_event_driven_wrapper(
                WrapperParams(consumers=n), [fanout_dep(n)]
            )
            reports = compare_organizations(arb, ed)
            assert (
                reports["event_driven"].fmax_mhz
                > reports["arbitrated"].fmax_mhz
            )

    def test_event_driven_advantage_narrows(self):
        # The paper's ratio shrinks from 1.12 (2 consumers) toward 1.03 (8).
        ratios = []
        for n in (2, 8):
            arb = generate_arbitrated_wrapper(WrapperParams(consumers=n))
            ed = generate_event_driven_wrapper(
                WrapperParams(consumers=n), [fanout_dep(n)]
            )
            reports = compare_organizations(arb, ed)
            ratios.append(
                reports["event_driven"].fmax_mhz / reports["arbitrated"].fmax_mhz
            )
        assert ratios[0] > ratios[1] > 1.0

    def test_slack_sign(self):
        report = estimate_timing(
            generate_arbitrated_wrapper(WrapperParams(consumers=2))
        )
        assert report.slack_ns > 0
        assert "MET" in report.render()
