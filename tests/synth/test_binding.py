"""Unit tests for datapath binding."""

from repro.hic import analyze
from repro.memory import allocate
from repro.synth import bind_program, bind_thread, synthesize_program


def bind(source, thread=None):
    checked = analyze(source)
    mm = allocate(checked)
    fsms = synthesize_program(checked, mm)
    if thread is None:
        thread = checked.program.threads[0].name
    return bind_thread(checked, mm, fsms[thread])


class TestUnits:
    def test_call_unit_bound(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsms = synthesize_program(figure1_checked, mm)
        summary = bind_thread(figure1_checked, mm, fsms["t1"])
        assert summary.unit_count("call") == 1

    def test_units_shared_across_states(self):
        # Two adds in different states share one ALU.
        summary = bind("thread t () { int a, b, c; a = b + 1; c = a + 2; }")
        assert summary.unit_count("alu") == 1
        alu = [u for u in summary.units if u.kind == "alu"][0]
        assert len(alu.operations) == 2

    def test_parallel_ops_in_one_state_need_two_units(self):
        # One statement with two adds evaluated in one compute state.
        summary = bind("thread t () { int a, b, c; a = (b + 1) + (c + 2); }")
        assert summary.unit_count("alu") >= 2

    def test_mux_inputs_grow_with_sharing(self):
        light = bind("thread t () { int a, b; a = b + 1; }")
        heavy = bind(
            "thread t () { int a, b; a = b + 1; a = a + 2; a = a + 3; }"
        )
        assert heavy.total_mux_inputs > light.total_mux_inputs


class TestRegisters:
    def test_register_variables_counted(self):
        summary = bind("thread t () { int x, y; x = y + 1; }")
        names = {r.name for r in summary.registers}
        assert {"x", "y"} <= names

    def test_bram_variables_not_registers(self):
        summary = bind("thread t () { int a[4], i; a[0] = i; }")
        names = {r.name for r in summary.registers}
        assert "a" not in names

    def test_load_temps_become_registers(self):
        summary = bind("thread t () { int a[4], i, x; x = a[i]; }")
        assert any(r.name.startswith("$t") for r in summary.registers)

    def test_register_bits(self):
        summary = bind("thread t () { int x; char c; x = c; }")
        assert summary.register_bits == 32 + 8


class TestPorts:
    def test_guarded_ports_recorded(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsms = synthesize_program(figure1_checked, mm)
        summaries = bind_program(figure1_checked, mm, fsms)
        assert "D" in summaries["t1"].memory_ports_used
        assert "C" in summaries["t2"].memory_ports_used

    def test_state_bits_propagated(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsms = synthesize_program(figure1_checked, mm)
        summaries = bind_program(figure1_checked, mm, fsms)
        for name, summary in summaries.items():
            assert summary.state_bits == fsms[name].state_bits()
