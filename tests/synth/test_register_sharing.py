"""Unit tests for lifetime-driven register sharing in binding."""

from repro.analysis import thread_lifetimes
from repro.flow import build_simulation, compile_design
from repro.hic import analyze, parse
from repro.memory import allocate
from repro.synth import bind_thread, synthesize_program

#: a and b have disjoint live ranges; c overlaps both.
SHAREABLE = """
thread t () {
  int a, b, c, out;
  a = 5;
  c = a + 1;
  b = 7;
  out = c + b;
}
"""

#: An accumulator: its value must survive across rounds.
ROUND_CARRIED = """
thread t () {
  int acc, scratch;
  acc = acc + 1;
  scratch = 3;
  acc = acc + scratch;
}
"""


def bind(source, share):
    checked = analyze(source)
    mm = allocate(checked)
    fsms = synthesize_program(checked, mm)
    name = checked.program.threads[0].name
    return bind_thread(checked, mm, fsms[name], share_registers=share)


class TestSharing:
    def test_disjoint_variables_share(self):
        baseline = bind(SHAREABLE, share=False)
        shared = bind(SHAREABLE, share=True)
        assert len(shared.registers) < len(baseline.registers)
        assert shared.register_bits < baseline.register_bits

    def test_occupants_recorded(self):
        shared = bind(SHAREABLE, share=True)
        merged = [r for r in shared.registers if len(r.occupants) > 1]
        assert merged
        occupants = set(merged[0].occupants)
        assert occupants <= {"a", "b", "c", "out"}

    def test_every_variable_bound_exactly_once(self):
        shared = bind(SHAREABLE, share=True)
        all_occupants = [
            name for reg in shared.registers for name in reg.occupants
        ]
        assert len(all_occupants) == len(set(all_occupants))
        assert {"a", "b", "c", "out"} <= set(all_occupants)

    def test_overlapping_variables_not_merged(self):
        shared = bind(SHAREABLE, share=True)
        lifetimes = thread_lifetimes(parse(SHAREABLE).threads[0])
        for reg in shared.registers:
            occupants = [
                n for n in reg.occupants if n in lifetimes.ranges
            ]
            for i, a in enumerate(occupants):
                for b in occupants[i + 1:]:
                    assert not lifetimes.ranges[a].overlaps(
                        lifetimes.ranges[b]
                    ), (a, b)

    def test_shared_register_width_is_max(self):
        source = """
        thread t () {
          int a, out;
          char c;
          a = 5;
          out = a + 1;
          c = 'x';
          out = out + c;
        }
        """
        shared = bind(source, share=True)
        for reg in shared.registers:
            if "a" in reg.occupants and "c" in reg.occupants:
                assert reg.width == 32


class TestRoundCarriedSafety:
    def test_accumulator_lives_whole_body(self):
        lifetimes = thread_lifetimes(parse(ROUND_CARRIED).threads[0])
        acc = lifetimes.ranges["acc"]
        assert acc.start == 0
        assert acc.end == 2  # last statement index: the body has 3 stmts

    def test_accumulator_never_shares(self):
        shared = bind(ROUND_CARRIED, share=True)
        for reg in shared.registers:
            if "acc" in reg.occupants:
                assert reg.occupants == ("acc",)

    def test_loop_counter_never_shares(self):
        source = """
        thread t () {
          int i, x;
          while (i < 4) { i = i + 1; }
          x = 9;
        }
        """
        shared = bind(source, share=True)
        for reg in shared.registers:
            if "i" in reg.occupants:
                assert reg.occupants == ("i",)

    def test_simulation_unaffected_by_binding_choice(self):
        # Binding is an area model concern; simulation reads the FSM
        # directly, so results are identical either way.
        design = compile_design(SHAREABLE)
        sim = build_simulation(design)
        sim.run(40)
        assert sim.executors["t"].env["out"] == 13
