"""Unit tests for FSM construction."""

import pytest

from repro.hic import analyze
from repro.memory import allocate
from repro.synth import (
    ComputeOp,
    MemReadOp,
    MemWriteOp,
    ReceiveOp,
    TransmitOp,
    synthesize_program,
    synthesize_thread,
)
from tests.conftest import make_fanout_source


def synth(source, thread=None):
    checked = analyze(source)
    mm = allocate(checked)
    if thread is None:
        thread = checked.program.threads[0].name
    return synthesize_thread(checked, mm, thread)


class TestFigure1:
    def test_producer_write_is_guarded(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsm = synthesize_thread(figure1_checked, mm, "t1")
        writes = fsm.guarded_writes()
        assert len(writes) == 1
        assert writes[0].port == "D"
        assert writes[0].dep_id == "mt1"

    def test_consumer_read_is_guarded(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsm = synthesize_thread(figure1_checked, mm, "t2")
        reads = fsm.guarded_reads()
        assert len(reads) == 1
        assert reads[0].port == "C"
        assert reads[0].dep_id == "mt1"

    def test_sync_states_annotated(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsms = synthesize_program(figure1_checked, mm)
        assert "mt1" in fsms["t1"].sync_states
        assert "mt1" in fsms["t2"].sync_states

    def test_fsm_loops_to_initial(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsm = synthesize_thread(figure1_checked, mm, "t1")
        last_states = [
            s
            for s in fsm.states.values()
            if any(t.target == fsm.initial for t in s.transitions)
        ]
        assert last_states

    def test_all_states_reachable(self, figure1_checked):
        mm = allocate(figure1_checked)
        for name in ("t1", "t2", "t3"):
            fsm = synthesize_thread(figure1_checked, mm, name)
            assert fsm.reachable_states() == set(fsm.states)


class TestMemoryDiscipline:
    def test_one_memory_op_per_state(self):
        source = """
        thread t () { int a[4], i, x; x = a[0] + a[1] + a[2]; i = x; }
        """
        fsm = synth(source)
        for state in fsm.states.values():
            assert len(state.memory_ops) <= 1

    def test_register_only_statement_has_no_mem_ops(self):
        fsm = synth("thread t () { int x, y; x = y + 1; }")
        assert all(not s.memory_ops for s in fsm.states.values())

    def test_array_read_uses_offset_expr(self):
        fsm = synth("thread t () { int a[4], i, x; x = a[i + 1]; }")
        reads = [
            op
            for s in fsm.states.values()
            for op in s.ops
            if isinstance(op, MemReadOp)
        ]
        assert len(reads) == 1
        assert reads[0].offset_expr is not None
        assert reads[0].port == "A"

    def test_array_write_uses_offset_expr(self):
        fsm = synth("thread t () { int a[4], i; a[i] = 7; }")
        writes = [
            op
            for s in fsm.states.values()
            for op in s.ops
            if isinstance(op, MemWriteOp)
        ]
        assert len(writes) == 1
        assert writes[0].offset_expr is not None

    def test_message_field_maps_to_word(self):
        fsm = synth("thread t () { message m; int x; x = m.ttl; m.ttl = x - 1; }")
        reads = [
            op
            for s in fsm.states.values()
            for op in s.ops
            if isinstance(op, MemReadOp)
        ]
        writes = [
            op
            for s in fsm.states.values()
            for op in s.ops
            if isinstance(op, MemWriteOp)
        ]
        # ttl is field index 5 in the field-per-word layout.
        assert reads[0].base_address == writes[0].base_address

    def test_duplicate_reads_coalesced(self):
        # x1 read twice in one expression: loaded once.
        source = """
        thread a () { int p, t;
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v;
          #producer{d,[a,p]}
          v = g(p, p);
        }
        """
        checked = analyze(source)
        mm = allocate(checked)
        fsm = synthesize_thread(checked, mm, "b")
        assert len(fsm.guarded_reads()) == 1


class TestControlFlow:
    def test_if_creates_branch_and_join(self):
        fsm = synth("thread t () { int x; if (x > 0) { x = 1; } else { x = 2; } }")
        branch_states = [
            s for s in fsm.states.values() if len(s.transitions) == 2
        ]
        assert branch_states

    def test_while_loops_back(self):
        fsm = synth("thread t () { int i; while (i < 4) { i = i + 1; } }")
        # Some state transitions backwards to an earlier-created state.
        names = list(fsm.states)
        order = {name: i for i, name in enumerate(names)}
        has_back_edge = any(
            order[t.target] < order[s.name]
            for s in fsm.states.values()
            for t in s.transitions
        )
        assert has_back_edge

    def test_case_arms(self):
        fsm = synth(
            "thread t () { int s; case (s) { of 0: { s = 1; } of 1: { s = 2; } "
            "default: { s = 0; } } }"
        )
        case_states = [s for s in fsm.states.values() if len(s.transitions) == 3]
        assert case_states

    def test_for_loop_structure(self):
        fsm = synth(
            "thread t () { int i, a[4]; for (i = 0; i < 4; i = i + 1) "
            "{ a[i] = i; } }"
        )
        writes = [
            op
            for s in fsm.states.values()
            for op in s.ops
            if isinstance(op, MemWriteOp)
        ]
        assert len(writes) == 1

    def test_break_exits_loop(self):
        fsm = synth(
            "thread t () { int i; while (1) { if (i > 3) { break; } "
            "i = i + 1; } i = 0; }"
        )
        # FSM must still be constructible and have an exit path.
        assert fsm.state_count > 3

    def test_receive_transmit_ops(self):
        source = (
            "#interface{eth, gige}\n"
            "thread t () { message m; receive(m, eth); transmit(m, eth); }"
        )
        fsm = synth(source)
        ops = [op for s in fsm.states.values() for op in s.ops]
        assert any(isinstance(op, ReceiveOp) for op in ops)
        assert any(isinstance(op, TransmitOp) for op in ops)

    def test_receive_state_blocks(self):
        source = (
            "#interface{eth, gige}\n"
            "thread t () { message m; receive(m, eth); }"
        )
        fsm = synth(source)
        rx_states = [s for s in fsm.states.values()
                     if any(isinstance(op, ReceiveOp) for op in s.ops)]
        assert rx_states[0].blocking


class TestScaling:
    @pytest.mark.parametrize("consumers", [2, 4, 8])
    def test_fanout_scenarios_synthesize(self, consumers):
        checked = analyze(make_fanout_source(consumers))
        mm = allocate(checked)
        fsms = synthesize_program(checked, mm)
        assert len(fsms) == consumers + 1
        guarded_reads = sum(
            len(fsm.guarded_reads()) for fsm in fsms.values()
        )
        assert guarded_reads == consumers

    def test_state_bits(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsm = synthesize_thread(figure1_checked, mm, "t1")
        assert fsm.state_bits() == max(1, (fsm.state_count - 1).bit_length())

    def test_compound_assignment_desugared(self):
        fsm = synth("thread t () { int x; x += 3; }")
        computes = [
            op
            for s in fsm.states.values()
            for op in s.ops
            if isinstance(op, ComputeOp)
        ]
        assert len(computes) == 1
