"""Unit tests for the FSM optimization passes."""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.hic import analyze
from repro.memory import allocate
from repro.synth import synthesize_thread
from repro.synth.optimize import (
    collapse_passthrough_states,
    eliminate_dead_states,
    optimize_fsm,
    pack_compute_states,
)


def synth(source, thread=None):
    checked = analyze(source)
    mm = allocate(checked)
    if thread is None:
        thread = checked.program.threads[0].name
    return synthesize_thread(checked, mm, thread)


class TestDeadStateElimination:
    def test_break_leaves_dead_state(self):
        fsm = synth(
            "thread t () { int i; while (1) { break; i = 1; } i = 2; }"
        )
        before = fsm.state_count
        removed = eliminate_dead_states(fsm)
        assert removed > 0
        assert fsm.state_count == before - removed
        assert fsm.reachable_states() == set(fsm.states)

    def test_clean_fsm_untouched(self):
        fsm = synth("thread t () { int x; x = 1; }")
        eliminate_dead_states(fsm)
        count = fsm.state_count
        assert eliminate_dead_states(fsm) == 0
        assert fsm.state_count == count

    def test_sync_states_pruned(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsm = synthesize_thread(figure1_checked, mm, "t1")
        eliminate_dead_states(fsm)
        assert all(
            name in fsm.states
            for names in fsm.sync_states.values()
            for name in names
        )


class TestPassthroughCollapse:
    def test_join_states_removed(self):
        fsm = synth(
            "thread t () { int x; if (x) { x = 1; } else { x = 2; } x = 3; }"
        )
        before = fsm.state_count
        collapsed = collapse_passthrough_states(fsm)
        assert collapsed > 0
        assert fsm.state_count < before

    def test_loop_headers_preserved(self):
        fsm = synth("thread t () { int i; while (i < 3) { i = i + 1; } }")
        collapse_passthrough_states(fsm)
        # The loop must still execute correctly after collapsing.
        order = {name: i for i, name in enumerate(fsm.states)}
        has_back_edge = any(
            order[tr.target] <= order[s.name]
            for s in fsm.states.values()
            for tr in s.transitions
        )
        assert has_back_edge

    def test_initial_state_never_collapsed(self):
        fsm = synth("thread t () { int x; x = 1; }")
        collapse_passthrough_states(fsm)
        assert fsm.initial in fsm.states


class TestComputePacking:
    def test_independent_computes_merge(self):
        fsm = synth(
            "thread t () { int a, b, c, d; a = b + 1; c = d + 2; }"
        )
        packed = pack_compute_states(fsm)
        assert packed == 1

    def test_resource_budget_respected(self):
        source = (
            "thread t () { int a, b, c, d, e, f2; "
            "a = b + 1; c = d + 2; e = f2 + 3; }"
        )
        fsm = synth(source)
        pack_compute_states(fsm, {"alu": 2, "mul": 1, "cmp": 2,
                                  "mem": 1, "call": 1})
        compute_states = [s for s in fsm.states.values() if s.ops]
        # 3 adds at 2 ALUs per cycle -> at least 2 states remain.
        assert len(compute_states) >= 2

    def test_memory_states_not_merged(self):
        fsm = synth("thread t () { int a[4], x, y; x = a[0]; y = x + 1; }")
        before_mem = sum(
            1 for s in fsm.states.values() if s.memory_ops
        )
        pack_compute_states(fsm)
        after_mem = sum(1 for s in fsm.states.values() if s.memory_ops)
        assert before_mem == after_mem

    def test_branch_targets_not_merged(self):
        fsm = synth(
            "thread t () { int x, y; if (x) { y = 1; y = y + 1; } }"
        )
        pack_compute_states(fsm)
        assert fsm.reachable_states() == set(fsm.states)


class TestOptimizeFsm:
    def test_counters_and_fixpoint(self):
        fsm = synth(
            "thread t () { int a, b, c; if (a) { b = 1; } else { b = 2; } "
            "c = b + 1; c = c + 2; }"
        )
        counters = optimize_fsm(fsm)
        assert counters["collapsed"] > 0 or counters["packed"] > 0
        # Running again is a no-op.
        assert optimize_fsm(fsm) == {"dead": 0, "collapsed": 0, "packed": 0}

    def test_optimized_fsm_still_simulates_correctly(self):
        source = (
            "thread t () { int a, b, c, done; "
            "if (done == 0) { a = 3; b = a + 4; c = a * b; done = 1; } }"
        )
        # Reference: unoptimized run through the normal flow.
        design = compile_design(source)
        sim = build_simulation(design)
        sim.run(60)
        reference = sim.executors["t"].env["c"]

        # Optimize the FSM in place and re-simulate.
        design2 = compile_design(source)
        from repro.synth.optimize import optimize_fsm as opt

        opt(design2.fsms["t"])
        sim2 = build_simulation(design2)
        sim2.run(60)
        assert sim2.executors["t"].env["c"] == reference == 3 * 7

    def test_optimization_reduces_cycles_per_round(self):
        source = (
            "thread t () { int a, b, c, d; "
            "a = a + 1; b = a + 2; c = b + 3; d = c + 4; }"
        )
        baseline = compile_design(source)
        sim = build_simulation(baseline)
        sim.run(200)
        base_rounds = sim.executors["t"].stats.rounds_completed

        optimized = compile_design(source)
        optimize_fsm(optimized.fsms["t"], {"alu": 4, "mul": 1, "cmp": 2,
                                           "mem": 1, "call": 1})
        sim2 = build_simulation(optimized)
        sim2.run(200)
        assert sim2.executors["t"].stats.rounds_completed > base_rounds

    def test_figure1_all_organizations_after_optimization(
        self, figure1_source
    ):
        for org in Organization:
            design = compile_design(figure1_source, organization=org)
            for fsm in design.fsms.values():
                optimize_fsm(fsm)
            sim = build_simulation(design)
            sim.run(300)
            assert sim.executors["t2"].stats.rounds_completed > 0
