"""Unit tests for behavioral-synthesis scheduling."""

from repro.hic import parse
from repro.synth import (
    DataflowGraph,
    build_expr_dfg,
    build_statement_dfg,
    expression_depth,
    op_class,
)


def assigns_of(source):
    program = parse(source)
    return [
        stmt
        for stmt in program.threads[0].statements()
    ]


def expr_of(text):
    program = parse(f"thread t () {{ int a, b, c, d; a = {text}; }}")
    return program.threads[0].statements()[0].value


class TestOpClass:
    def test_classes(self):
        assert op_class("+") == "alu"
        assert op_class("*") == "mul"
        assert op_class("==") == "cmp"
        assert op_class("&&") == "cmp"
        assert op_class("<<") == "alu"


class TestExpressionDepth:
    def test_leaf_has_zero_depth(self):
        assert expression_depth(expr_of("b")) == 0

    def test_single_op(self):
        assert expression_depth(expr_of("b + c")) == 1

    def test_chain_depth(self):
        assert expression_depth(expr_of("b + c + d")) == 2

    def test_balanced_tree_depth(self):
        assert expression_depth(expr_of("(a + b) + (c + d)")) == 2

    def test_call_counts_as_level(self):
        assert expression_depth(expr_of("f(b + c)")) == 2

    def test_conditional(self):
        assert expression_depth(expr_of("b ? c : d")) == 1


class TestAsapAlap:
    def test_asap_levels(self):
        graph = DataflowGraph()
        build_expr_dfg(graph, expr_of("b + c + d"))
        levels = sorted(graph.asap().values())
        assert levels == [0, 1]

    def test_alap_no_slack_on_critical_path(self):
        graph = DataflowGraph()
        build_expr_dfg(graph, expr_of("b + c + d"))
        asap = graph.asap()
        alap = graph.alap(length=2)
        # Both ops are on the critical path: ALAP == ASAP.
        assert asap == alap

    def test_alap_slack_off_critical_path(self):
        graph = DataflowGraph()
        build_expr_dfg(graph, expr_of("(b + c + d) + (a + b)"))
        asap = graph.asap()
        alap = graph.alap()
        slack = {i: alap[i] - asap[i] for i in asap}
        assert any(s > 0 for s in slack.values())
        assert all(s >= 0 for s in slack.values())


class TestListScheduling:
    def test_respects_resource_limits(self):
        graph = DataflowGraph()
        build_expr_dfg(graph, expr_of("(a + b) + (c + d) + (a + c) + (b + d)"))
        schedule = graph.list_schedule({"alu": 1, "mul": 1, "cmp": 1,
                                        "mem": 1, "call": 1})
        per_cycle = {}
        for idx, cycle in schedule.items():
            per_cycle.setdefault(cycle, []).append(idx)
        assert all(len(ops) <= 1 for ops in per_cycle.values())

    def test_respects_dependencies(self):
        graph = DataflowGraph()
        build_expr_dfg(graph, expr_of("a + b + c"))
        schedule = graph.list_schedule()
        ops = graph.op_nodes()
        first, second = ops[0], ops[1]
        assert schedule[first.index] < schedule[second.index]

    def test_more_resources_shorten_schedule(self):
        graph = DataflowGraph()
        build_expr_dfg(graph, expr_of("(a + b) + (c + d) + (a + c) + (b + d)"))
        narrow = graph.schedule_length({"alu": 1, "mul": 1, "cmp": 1,
                                        "mem": 1, "call": 1})
        wide = graph.schedule_length({"alu": 4, "mul": 1, "cmp": 1,
                                      "mem": 1, "call": 1})
        assert wide < narrow

    def test_empty_graph(self):
        graph = DataflowGraph()
        assert graph.list_schedule() == {}
        assert graph.schedule_length() == 0
        assert graph.depth() == 0


class TestStatementChaining:
    def test_def_use_chain_across_statements(self):
        stmts = assigns_of("thread t () { int a, b, c; a = b + 1; c = a + 2; }")
        graph = build_statement_dfg(stmts)
        schedule = graph.list_schedule()
        cycles = sorted(schedule.values())
        # Second add depends on first: two distinct cycles.
        assert cycles[0] < cycles[-1]

    def test_independent_statements_can_share_cycle(self):
        stmts = assigns_of("thread t () { int a, b, c, d; a = b + 1; c = d + 2; }")
        graph = build_statement_dfg(stmts)
        schedule = graph.list_schedule({"alu": 2, "mul": 1, "cmp": 1,
                                        "mem": 1, "call": 1})
        assert len(set(schedule.values())) == 1

    def test_compound_assignment_reads_previous_def(self):
        stmts = assigns_of("thread t () { int a, b; a = b + 1; a += 2; }")
        graph = build_statement_dfg(stmts)
        assert graph.schedule_length() == 2
