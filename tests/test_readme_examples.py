"""The README's code blocks must actually run."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_quickstart(self):
        text = README.read_text()
        assert "## Quickstart" in text
        assert "compile_design" in text

    def test_python_blocks_execute(self):
        blocks = python_blocks()
        assert blocks, "README must contain at least one python block"
        for block in blocks:
            namespace: dict = {}
            exec(compile(block, "<README>", "exec"), namespace)

    def test_quickstart_block_produces_expected_objects(self):
        block = python_blocks()[0]
        namespace: dict = {}
        exec(compile(block, "<README>", "exec"), namespace)
        design = namespace["design"]
        assert design.area_report("bram0").ffs == 66
        sim = namespace["sim"]
        assert sim.executors["t2"].env["y1"] != 0

    def test_documented_flags_exist(self):
        # Every CLI flag the README mentions must be real.
        from repro.__main__ import _parser
        from repro.faults.campaign import _faults_parser
        from repro.model.cli import _predict_parser
        from repro.obs.profile_cli import _profile_parser
        from repro.scenarios.cli import _run_parser, _scenarios_parser

        text = README.read_text()
        parser_flags = {
            option
            for parser in (
                _parser(),
                _faults_parser(),
                _profile_parser(),
                _predict_parser(),
                _run_parser(),
                _scenarios_parser(),
            )
            for action in parser._actions
            for option in action.option_strings
        }
        for flag in re.findall(r"--[a-z][a-z-]+", text):
            if flag in ("--benchmark-only", "--no-build-isolation"):
                continue  # pytest/pip flags, not ours
            if flag == "--predict-prune":
                continue  # examples/design_space_exploration.py flag
            assert flag in parser_flags, f"README mentions unknown {flag}"
