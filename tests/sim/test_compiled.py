"""Unit coverage for the compiled backend: cache, fallback, fingerprint.

The differential suite proves the generated code's *semantics*; these
tests pin the subsystem's plumbing — the in-process codegen cache
(including the issue's acceptance criterion that a second
``build_simulation`` of an identical design is a cache hit), the
unsupported-design and bind-failure fallbacks, and fingerprint
sensitivity to the inputs codegen consumes.
"""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import (
    BernoulliTraffic,
    forwarding_functions,
    forwarding_source,
)
from repro.sim.compiled import (
    CompiledKernel,
    cache_size,
    clear_cache,
    compile_program,
    design_fingerprint,
    generation_count,
)

@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def _design(**kwargs):
    return compile_design(forwarding_source(2), **kwargs)


class TestCodegenCache:
    def test_second_build_of_identical_design_hits_cache(self):
        before = generation_count()
        sim1 = build_simulation(_design(), kernel="compiled")
        assert generation_count() == before + 1
        sim2 = build_simulation(_design(), kernel="compiled")
        # identical design recompiled from source: zero new generations
        assert generation_count() == before + 1
        assert sim1.kernel.program is sim2.kernel.program
        assert cache_size() == 1

    def test_different_organizations_generate_separately(self):
        build_simulation(
            _design(organization=Organization.ARBITRATED), kernel="compiled"
        )
        before = generation_count()
        build_simulation(
            _design(organization=Organization.EVENT_DRIVEN), kernel="compiled"
        )
        assert generation_count() == before + 1
        assert cache_size() == 2

    def test_clear_cache_forces_regeneration(self):
        design = _design()
        compile_program(design)
        before = generation_count()
        clear_cache()
        assert cache_size() == 0
        compile_program(design)
        assert generation_count() == before + 1

    def test_cached_program_is_shared_across_kernels(self):
        design = _design()
        first = compile_program(design)
        second = compile_program(design)
        assert first is second


class TestFingerprint:
    def test_fingerprint_is_deterministic(self):
        assert design_fingerprint(_design()) == design_fingerprint(_design())

    def test_fingerprint_tracks_thread_count(self):
        two = compile_design(forwarding_source(2))
        four = compile_design(forwarding_source(4))
        assert design_fingerprint(two) != design_fingerprint(four)

    def test_fingerprint_tracks_fabric(self):
        flat = _design()
        banked = _design(num_banks=4)
        assert design_fingerprint(flat) != design_fingerprint(banked)

    def test_fingerprint_tracks_organization(self):
        arb = _design(organization=Organization.ARBITRATED)
        lock = _design(organization=Organization.LOCK_BASELINE)
        assert design_fingerprint(arb) != design_fingerprint(lock)


class TestFallback:
    def test_kernel_without_design_interprets(self):
        sim = build_simulation(_design(), kernel="compiled")
        bare = CompiledKernel(sim.kernel.executors, sim.kernel.controllers)
        bare.run(10)
        assert bare.cycles_interpreted == 10
        assert bare.cycles_compiled == 0

    def test_unsupported_program_reports_reason_and_interprets(
        self, monkeypatch
    ):
        from repro.sim.compiled import cache as cache_module
        from repro.sim.compiled.codegen import UnsupportedDesign

        def refuse(design, digest=""):
            raise UnsupportedDesign("synthetic: no compiled equivalent")

        monkeypatch.setattr(cache_module, "generate_source", refuse)
        design = _design()
        program = compile_program(design)
        assert not program.supported
        assert "synthetic" in program.reason
        # the unsupported verdict is cached, not retried per build
        before = generation_count()
        sim = build_simulation(design, kernel="compiled")
        assert generation_count() == before
        kernel = sim.kernel
        assert kernel.bind_error == program.reason
        sim.run(20)
        assert kernel.cycles_interpreted == 20
        assert kernel.cycles_compiled == 0

    def test_bind_failure_falls_back_silently(self, monkeypatch):
        design = _design()
        program = compile_program(design)
        broken = compile("def bind(kernel):\n    raise RuntimeError('drift')\n",
                         "<broken>", "exec")
        from repro.sim.compiled import cache as cache_module
        monkeypatch.setitem(
            cache_module._CACHE,
            program.digest,
            type(program)(
                program.digest, program.source, broken, supported=True
            ),
        )
        sim = build_simulation(design, kernel="compiled")
        assert sim.kernel.bind_error == "RuntimeError: drift"
        sim.run(15)
        assert sim.kernel.cycles_interpreted == 15

    def test_bind_failure_raises_under_strict_env(self, monkeypatch):
        design = _design()
        program = compile_program(design)
        broken = compile("def bind(kernel):\n    raise RuntimeError('drift')\n",
                         "<broken>", "exec")
        from repro.sim.compiled import cache as cache_module
        monkeypatch.setitem(
            cache_module._CACHE,
            program.digest,
            type(program)(
                program.digest, program.source, broken, supported=True
            ),
        )
        monkeypatch.setenv("REPRO_COMPILED_STRICT", "1")
        with pytest.raises(RuntimeError, match="drift"):
            build_simulation(design, kernel="compiled")

    def test_observer_forces_interpreted_path(self):
        sim = build_simulation(_design(), kernel="compiled")
        sim.attach_telemetry()
        sim.run(30)
        assert sim.kernel.cycles_interpreted == 30
        assert sim.kernel.cycles_compiled == 0

    def test_non_rx_hook_forces_interpreted_path(self):
        sim = build_simulation(_design(), kernel="compiled")
        seen = []
        sim.kernel.add_pre_cycle_hook(
            lambda cycle, kernel: seen.append(cycle)
        )
        sim.run(5)
        assert sim.kernel.cycles_interpreted == 5
        assert seen == [0, 1, 2, 3, 4]

    def test_traffic_hook_stays_on_fast_path(self):
        sim = build_simulation(
            _design(),
            functions=forwarding_functions(),
            kernel="compiled",
        )
        generator = BernoulliTraffic(rate=0.5, seed=3)
        hook = generator.attach(sim.rx["eth_in"])
        sim.kernel.add_pre_cycle_hook(hook)
        sim.run(200)
        assert sim.kernel.cycles_compiled == 200
        assert sim.kernel.cycles_interpreted == 0
        assert hook.injected > 0

    def test_reset_zeroes_path_counters(self):
        sim = build_simulation(_design(), kernel="compiled")
        sim.run(10)
        sim.kernel.reset()
        assert sim.kernel.cycles_compiled == 0
        assert sim.kernel.cycles_interpreted == 0
        assert sim.kernel.cycle == 0
