"""The ``max_wall_seconds`` livelock valve on both simulation kernels.

The in-process complement of the campaign engine's worker-kill timeout:
a run whose cycles keep executing but never finish must surface as a
structured :class:`~repro.core.errors.SimulationTimeout` instead of a
silent hang (see ``docs/campaign.md``).
"""

import pytest

from repro.core import ControllerError, Organization, SimulationTimeout
from repro.flow import build_simulation, compile_design

from ..conftest import FIGURE1_SOURCE


@pytest.fixture(scope="module", params=["reference", "wheel"])
def simulation(request):
    design = compile_design(
        FIGURE1_SOURCE, organization=Organization.ARBITRATED
    )
    return build_simulation(design, kernel=request.param)


class TestWallClockValve:
    def test_zero_budget_times_out_immediately(self, simulation):
        with pytest.raises(SimulationTimeout) as excinfo:
            simulation.run(10_000, max_wall_seconds=0.0)
        error = excinfo.value
        assert error.kind == "simulation-timeout"
        assert error.wall_seconds == 0.0
        assert error.cycle is not None
        assert "wall-clock" in error.describe()

    def test_timeout_is_a_controller_error(self, simulation):
        # Campaign-level triage catches ControllerError; the valve must
        # flow through the same structured channel.
        with pytest.raises(ControllerError):
            simulation.run(10_000, max_wall_seconds=0.0)

    def test_generous_budget_completes_normally(self):
        design = compile_design(
            FIGURE1_SOURCE, organization=Organization.ARBITRATED
        )
        bounded = build_simulation(design)
        unbounded = build_simulation(design)
        result = bounded.run(200, max_wall_seconds=60.0)
        baseline = unbounded.run(200)
        assert result.cycles_run == baseline.cycles_run
        assert bounded.kernel.cycle == unbounded.kernel.cycle

    def test_negative_budget_rejected(self, simulation):
        with pytest.raises(ValueError, match="max_wall_seconds"):
            simulation.run(10, max_wall_seconds=-1.0)

    def test_default_is_unbounded(self, simulation):
        simulation.kernel.reset()
        simulation.run(50)  # no budget: must not raise
