"""Unit tests for the FSM thread executor."""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.hic import parse
from repro.sim import (
    RxInterface,
    TxInterface,
    default_intrinsic,
    to_signed,
    to_unsigned,
)


def run_design(source, cycles=100, functions=None,
               organization=Organization.ARBITRATED):
    design = compile_design(source, organization=organization)
    sim = build_simulation(design, functions=functions)
    sim.run(cycles)
    return sim


class TestArithmetic:
    def test_to_signed_roundtrip(self):
        assert to_signed(to_unsigned(-5)) == -5
        assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
        assert to_signed(0x80000000) == -(1 << 31)

    def test_default_intrinsic_deterministic(self):
        f1 = default_intrinsic("f")
        f2 = default_intrinsic("f")
        assert f1(1, 2) == f2(1, 2)

    def test_default_intrinsic_name_salted(self):
        assert default_intrinsic("f")(1) != default_intrinsic("g")(1)

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("3 + 4", 7),
            ("3 - 4", to_unsigned(-1)),
            ("3 * 4", 12),
            ("7 / 2", 3),
            ("-7 / 2", to_unsigned(-3)),  # truncation toward zero
            ("7 % 3", 1),
            ("1 << 4", 16),
            ("256 >> 4", 16),
            ("12 & 10", 8),
            ("12 | 10", 14),
            ("12 ^ 10", 6),
            ("3 < 4", 1),
            ("4 <= 4", 1),
            ("5 == 5", 1),
            ("5 != 5", 0),
            ("1 && 0", 0),
            ("1 || 0", 1),
            ("!0", 1),
            ("~0", to_unsigned(-1)),
            ("1 ? 10 : 20", 10),
            ("0 ? 10 : 20", 20),
        ],
    )
    def test_expression_evaluation(self, expr, expected):
        sim = run_design(f"thread t () {{ int x; x = {expr}; }}", cycles=5)
        assert sim.executors["t"].env["x"] == expected

    def test_division_by_zero_convention(self):
        sim = run_design("thread t () { int x, z; x = 5 / z; }", cycles=5)
        assert sim.executors["t"].env["x"] == (1 << 32) - 1

    def test_custom_function_table(self):
        sim = run_design(
            "thread t () { int x; x = double(21); }",
            cycles=5,
            functions={"double": lambda v: 2 * v},
        )
        assert sim.executors["t"].env["x"] == 42


class TestControlFlowExecution:
    def test_if_else_takes_correct_branch(self):
        sim = run_design(
            "thread t () { int x, y; x = 5; "
            "if (x > 3) { y = 1; } else { y = 2; } }",
            cycles=20,
        )
        assert sim.executors["t"].env["y"] == 1

    def test_while_loop_counts(self):
        source = (
            "thread t () { int i, s, done; "
            "if (done == 0) { s = 0; "
            "for (i = 0; i < 5; i = i + 1) { s = s + i; } done = 1; } }"
        )
        sim = run_design(source, cycles=120)
        assert sim.executors["t"].env["s"] == 10

    def test_case_dispatch(self):
        source = (
            "thread t () { int s, out; s = 2; "
            "case (s) { of 1: { out = 10; } of 2: { out = 20; } "
            "default: { out = 30; } } }"
        )
        sim = run_design(source, cycles=20)
        assert sim.executors["t"].env["out"] == 20

    def test_case_default(self):
        source = (
            "thread t () { int s, out; s = 9; "
            "case (s) { of 1: { out = 10; } default: { out = 30; } } }"
        )
        sim = run_design(source, cycles=20)
        assert sim.executors["t"].env["out"] == 30

    def test_fsm_wraps_and_repeats(self):
        sim = run_design("thread t () { int n; n = n + 1; }", cycles=50)
        stats = sim.executors["t"].stats
        assert stats.rounds_completed > 5
        assert sim.executors["t"].env["n"] == stats.rounds_completed


class TestMemoryExecution:
    def test_array_store_load(self):
        source = (
            "thread t () { int a[4], i, x, done; "
            "if (done == 0) { "
            "for (i = 0; i < 4; i = i + 1) { a[i] = i * 10; } "
            "x = a[2]; done = 1; } }"
        )
        sim = run_design(source, cycles=200)
        assert sim.executors["t"].env["x"] == 20

    def test_message_field_update_in_bram(self):
        source = "thread t () { message m; m.ttl = 64; }"
        sim = run_design(source, cycles=20)
        bram = sim.controllers["bram0"].bram
        design = sim.design
        placement = design.memory_map.placement("t", "m")
        from repro.hic.types import MESSAGE_FIELDS

        ttl_word = placement.base_address + list(MESSAGE_FIELDS).index("ttl")
        assert bram.peek(ttl_word) == 64

    def test_shared_value_flows_between_threads(self, figure1_source):
        sim = run_design(figure1_source, cycles=100)
        # t2's y1 must equal g(x1, y2) with x1 = f(xtmp, x2) = f(0, 0).
        f = default_intrinsic("f")
        g = default_intrinsic("g")
        expected_x1 = f(0, 0)
        assert sim.executors["t2"].env["y1"] == g(expected_x1, 0)


class TestInterfaces:
    def test_rx_queue_fifo(self):
        rx = RxInterface("eth")
        rx.push({"payload": 1})
        rx.push({"payload": 2})
        assert rx.pop()["payload"] == 1
        assert rx.pop()["payload"] == 2
        assert rx.pop() is None
        assert rx.delivered == 2

    def test_tx_records_cycle(self):
        tx = TxInterface("eth")
        tx.push(7, {"payload": 3})
        assert tx.messages == [(7, {"payload": 3})]

    def test_receive_blocks_without_traffic(self):
        source = (
            "#interface{eth, gige}\n"
            "thread t () { message m; int n; receive(m, eth); n = n + 1; }"
        )
        sim = run_design(source, cycles=50)
        assert sim.executors["t"].env.get("n", 0) == 0
        assert sim.executors["t"].stats.stall_cycles > 40

    def test_receive_transmit_roundtrip(self):
        source = (
            "#interface{eth, gige}\n"
            "thread t () { message m; receive(m, eth); "
            "m.ttl = m.ttl - 1; transmit(m, eth); }"
        )
        design = compile_design(source)
        sim = build_simulation(design)
        sim.inject("eth", {"ttl": 10, "payload": 99})
        sim.run(30)
        assert sim.tx["eth"].count == 1
        __, message = sim.tx["eth"].messages[0]
        assert message["ttl"] == 9
        assert message["payload"] == 99


class TestStats:
    def test_utilization_bounds(self, figure1_source):
        sim = run_design(figure1_source, cycles=100)
        for executor in sim.executors.values():
            assert 0.0 <= executor.stats.utilization <= 1.0

    def test_state_visits_recorded(self):
        sim = run_design("thread t () { int x; x = 1; }", cycles=10)
        visits = sim.executors["t"].stats.state_visits
        assert sum(visits.values()) == 10
