"""Unit tests for the timing wheel and the fast kernel's skip machinery.

The cycle-equivalence of :class:`FastKernel` against the reference
kernel is covered end-to-end by ``tests/differential/``; this module
tests the wheel data structure itself and the kernel-level mechanics
(parking counters, final-cycle rule, ``until`` handling, reset).
"""

import pytest

from repro.core import ArbitratedController
from repro.flow import build_simulation, compile_design
from repro.memory import BlockRam, DependencyEntry, DependencyList
from repro.net import (
    DeterministicTraffic,
    demo_table,
    forwarding_functions,
    forwarding_source,
)
from repro.sim import FastKernel, TimingWheel


class TestTimingWheel:
    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            TimingWheel(slot_count=1)
        with pytest.raises(ValueError):
            TimingWheel(levels=0)

    def test_horizon(self):
        assert TimingWheel(slot_count=64, levels=3).horizon == 64**3
        assert TimingWheel(slot_count=4, levels=2).horizon == 16

    def test_schedule_and_earliest(self):
        wheel = TimingWheel(slot_count=8, levels=2)
        assert wheel.earliest() is None
        wheel.schedule(12, "a")
        wheel.schedule(5, "b")
        wheel.schedule(40, "c")
        assert len(wheel) == 3
        assert wheel.earliest() == 5

    def test_level_of_hashes_by_distance(self):
        wheel = TimingWheel(slot_count=8, levels=2)
        assert wheel.level_of(3) == 0  # within the first 8 cycles
        assert wheel.level_of(20) == 1  # within 8**2
        assert wheel.level_of(100) == 2  # beyond the horizon: overflow

    def test_overflow_beyond_horizon(self):
        wheel = TimingWheel(slot_count=4, levels=2)
        wheel.schedule(1000, "far")
        assert len(wheel) == 1
        assert wheel.earliest() == 1000

    def test_cannot_schedule_in_the_past(self):
        wheel = TimingWheel(slot_count=8, levels=2, start=10)
        with pytest.raises(ValueError):
            wheel.schedule(9)

    def test_advance_cascades_to_finer_levels(self):
        wheel = TimingWheel(slot_count=4, levels=3)
        wheel.schedule(60, "x")  # level 2 from base 0
        assert wheel.level_of(60) == 2
        wheel.advance(58)
        # Now only 2 cycles away: must have cascaded to level 0.
        assert wheel.level_of(60) == 0
        assert wheel.earliest() == 60
        assert len(wheel) == 1

    def test_advance_refuses_to_drop_events(self):
        wheel = TimingWheel(slot_count=8, levels=2)
        wheel.schedule(5, "due")
        with pytest.raises(ValueError):
            wheel.advance(6)
        with pytest.raises(ValueError):
            wheel.advance(-1)  # backwards

    def test_pop_due(self):
        wheel = TimingWheel(slot_count=8, levels=2)
        wheel.schedule(3, "a")
        wheel.schedule(7, "b")
        wheel.schedule(30, "c")
        assert sorted(wheel.pop_due(7)) == ["a", "b"]
        assert len(wheel) == 1
        assert wheel.pop_due(7) == []
        assert wheel.pop_due(30) == ["c"]
        assert len(wheel) == 0

    def test_clear_rebases(self):
        wheel = TimingWheel(slot_count=8, levels=2)
        wheel.schedule(3)
        wheel.clear(base=100)
        assert len(wheel) == 0
        assert wheel.earliest() is None
        with pytest.raises(ValueError):
            wheel.schedule(99)
        wheel.schedule(100)
        assert wheel.earliest() == 100


def make_idle_kernel():
    """A kernel with no executors and one request-free controller — the
    maximally quiescent system."""
    deplist = DependencyList(
        bram="bram0",
        entries=[DependencyEntry("d0", 1, 0, "prod", ("cons",))],
    )
    controller = ArbitratedController(
        BlockRam("bram0"), deplist, ["cons"], ["prod"]
    )
    return FastKernel(executors={}, controllers={"bram0": controller})


class TestFastKernelMechanics:
    def test_idle_run_skips_to_the_final_cycle(self):
        kernel = make_idle_kernel()
        result = kernel.run(100)
        assert result.cycles_run == 100
        assert kernel.cycle == 100
        # Executes the first cycle, skips to the last, executes it.
        assert kernel.cycles_executed == 2
        assert kernel.cycles_skipped == 98

    def test_accounting_always_totals_the_run(self):
        kernel = make_idle_kernel()
        kernel.run(57)
        assert kernel.cycles_executed + kernel.cycles_skipped == 57

    def test_until_predicate_disables_skipping(self):
        kernel = make_idle_kernel()
        kernel.run(50, until=lambda k: False)
        assert kernel.cycles_executed == 50
        assert kernel.cycles_skipped == 0

    def test_unknown_hook_disables_skipping(self):
        kernel = make_idle_kernel()
        kernel.add_post_cycle_hook(lambda c, k: None)  # no next_wake
        kernel.run(50)
        assert kernel.cycles_executed == 50
        assert kernel.cycles_skipped == 0

    def test_hook_with_wake_keeps_skipping(self):
        fired = []

        def hook(cycle, kernel):
            if cycle == 20:
                fired.append(cycle)

        hook.next_wake = lambda cycle, limit, kernel: 20 if cycle < 20 else None
        kernel = make_idle_kernel()
        kernel.add_pre_cycle_hook(hook)
        kernel.run(100)
        assert fired == [20]
        assert kernel.cycles_skipped > 0
        # Cycle 20 was executed, not skipped over.
        assert kernel.cycles_executed >= 3

    def test_reset_clears_counters_and_parks(self):
        kernel = make_idle_kernel()
        kernel.run(30)
        kernel.reset()
        assert kernel.cycle == 0
        assert kernel.cycles_executed == 0
        assert kernel.cycles_skipped == 0
        assert kernel._parked == {}
        kernel.run(30)
        assert kernel.cycles_executed + kernel.cycles_skipped == 30

    def test_single_stepping_never_skips(self):
        kernel = make_idle_kernel()
        for __ in range(10):
            kernel.step()
        assert kernel.cycle == 10
        assert kernel.cycles_executed == 10
        assert kernel.cycles_skipped == 0


class TestWheelHorizonEdges:
    def test_schedule_exactly_at_horizon_overflows(self):
        # ``horizon`` cycles from the base are covered; an event exactly
        # *at* ``base + horizon`` is the first one that is not, so it
        # must take the overflow list — and still be found by earliest().
        wheel = TimingWheel(slot_count=4, levels=2)
        assert wheel.horizon == 16
        wheel.schedule(15, "in")  # last in-horizon cycle
        wheel.schedule(16, "at")  # exactly at the horizon
        assert wheel.level_of(15) == 1
        assert wheel.level_of(16) == 2  # == levels: the overflow list
        assert wheel.earliest() == 15
        assert len(wheel) == 2

    def test_advance_cascades_horizon_event_in(self):
        wheel = TimingWheel(slot_count=4, levels=2)
        wheel.schedule(16, "at")
        wheel.advance(1)  # now 15 cycles away: inside the horizon
        assert wheel.level_of(16) == 1
        wheel.advance(13)  # 3 away: finest level
        assert wheel.level_of(16) == 0
        assert wheel.pop_due(16) == ["at"]
        assert len(wheel) == 0

    def test_wake_exactly_at_the_run_horizon(self):
        """A wake landing exactly on the run's final cycle: the skip
        jumps straight to it, and the final-cycle rule executes it (the
        hook must fire, not be skipped over)."""
        fired = []

        def hook(cycle, kernel):
            if cycle == 99:
                fired.append(cycle)

        hook.next_wake = (
            lambda cycle, limit, kernel: 99 if cycle < 99 else None
        )
        kernel = make_idle_kernel()
        kernel.add_pre_cycle_hook(hook)
        kernel.run(100)
        assert fired == [99]
        assert kernel.cycle == 100
        # first cycle, one jump, final cycle: nothing else executes
        assert kernel.cycles_executed == 2
        assert kernel.cycles_skipped == 98

    def test_imminent_wake_means_zero_length_skip(self):
        """A hook that always reports a wake on the very next cycle
        leaves a zero-length idle stretch; the kernel must execute every
        cycle rather than spin on zero-length jumps."""
        hook_calls = []

        def hook(cycle, kernel):
            hook_calls.append(cycle)

        hook.next_wake = lambda cycle, limit, kernel: cycle + 1
        kernel = make_idle_kernel()
        kernel.add_pre_cycle_hook(hook)
        kernel.run(40)
        assert kernel.cycle == 40
        assert kernel.cycles_executed == 40
        assert kernel.cycles_skipped == 0
        assert hook_calls == list(range(40))


def make_traffic_sim(kernel):
    """The Figure-1 forwarding pair under one packet every 200 cycles —
    long quiescent stretches bracketed by full produce/consume rounds."""
    design = compile_design(forwarding_source(2))
    sim = build_simulation(
        design, functions=forwarding_functions(demo_table()), kernel=kernel
    )
    hook = DeterministicTraffic(interval=200).attach(sim.rx["eth_in"])
    sim.kernel.add_pre_cycle_hook(hook)
    return sim


class TestParkLifecycle:
    def test_repark_rebuilds_frozen_requests(self):
        """A mem-parked executor re-asserts its frozen request every
        parked cycle; the grant un-parks it, and once it blocks again
        the kernel must build a *fresh* park record (re-freezing the
        resubmitted request), never resurrect the stale one."""
        sim = make_traffic_sim("wheel")
        kernel = sim.kernel

        sim.run(150)  # quiescent between the packets at 0 and 200
        first = dict(kernel._parked)
        assert first["classify"].park.kind == "recv"
        for name in ("egress0", "egress1"):
            record = first[name]
            assert record.park.kind == "mem"
            assert len(record.requests) == 1  # the frozen guarded read

        sim.run(210)  # across the arrival at 200, back to quiescence
        second = dict(kernel._parked)
        assert set(second) == set(first)
        for name, record in second.items():
            # the packet un-parked every executor; each re-park is a
            # rebuilt record, not the pre-arrival one resubmitted
            assert record is not first[name]

        reference = make_traffic_sim("reference")
        reference.run(360)
        assert sim.tx["eth_out"].count == reference.tx["eth_out"].count == 2
