"""Unit tests for the simulation kernel, probes, and VCD writer."""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import forwarding_functions, forwarding_source
from repro.sim import (
    ConsumerLatencyProbe,
    ThroughputProbe,
    VcdWriter,
    determinism_report,
)
from repro.sim.probes import PostWriteLatencyProbe
from tests.conftest import make_fanout_source


class TestKernel:
    def test_run_counts_cycles(self, figure1_source):
        design = compile_design(figure1_source)
        sim = build_simulation(design)
        result = sim.run(25)
        assert result.cycles_run == 25

    def test_until_predicate_stops_early(self, figure1_source):
        design = compile_design(figure1_source)
        sim = build_simulation(design)
        result = sim.run(1000, until=lambda k: k.cycle >= 10)
        assert result.cycles_run == 10

    def test_hooks_fire_in_order(self, figure1_source):
        design = compile_design(figure1_source)
        sim = build_simulation(design)
        calls = []
        sim.kernel.add_pre_cycle_hook(lambda c, k: calls.append(("pre", c)))
        sim.kernel.add_post_cycle_hook(lambda c, k: calls.append(("post", c)))
        sim.run(2)
        assert calls == [("pre", 0), ("post", 0), ("pre", 1), ("post", 1)]

    def test_describe_mentions_threads(self, figure1_source):
        design = compile_design(figure1_source)
        sim = build_simulation(design)
        text = sim.run(20).describe()
        assert "t1" in text and "rounds" in text

    def test_deterministic_given_same_seed(self):
        def run_once():
            from repro.net import BernoulliTraffic

            design = compile_design(forwarding_source(2))
            sim = build_simulation(design, functions=forwarding_functions())
            gen = BernoulliTraffic(rate=0.1, seed=5)
            sim.kernel.add_pre_cycle_hook(gen.attach(sim.rx["eth_in"]))
            sim.run(500)
            return [m for __, m in sim.tx["eth_out"].messages]

        assert run_once() == run_once()


class TestProbes:
    def make_run(self, organization, consumers=4, cycles=500):
        design = compile_design(
            make_fanout_source(consumers), organization=organization
        )
        sim = build_simulation(design)
        sim.run(cycles)
        return sim

    def test_post_write_latency_event_driven_is_rank(self):
        sim = self.make_run(Organization.EVENT_DRIVEN)
        probe = PostWriteLatencyProbe(sim.controllers["bram0"])
        assert probe.all_deterministic()
        deltas = probe.deltas()
        for (thread, __), waits in deltas.items():
            rank = int(thread[1:]) + 1
            assert set(waits) == {rank}

    def test_post_write_probe_groups_by_consumer(self):
        sim = self.make_run(Organization.ARBITRATED)
        probe = PostWriteLatencyProbe(sim.controllers["bram0"])
        assert len(probe.summaries()) == 4

    def test_consumer_latency_probe_summaries(self):
        sim = self.make_run(Organization.ARBITRATED)
        probe = ConsumerLatencyProbe(sim.controllers["bram0"])
        summaries = probe.summaries()
        assert {s.thread for s in summaries} == {"c0", "c1", "c2", "c3"}
        assert all(s.waits for s in summaries)

    def test_determinism_report_text(self):
        sim = self.make_run(Organization.ARBITRATED)
        probe = ConsumerLatencyProbe(sim.controllers["bram0"])
        text = determinism_report(probe)
        assert "c0/d0" in text

    def test_empty_probe_report(self, figure1_source):
        design = compile_design(figure1_source)
        sim = build_simulation(design)
        probe = ConsumerLatencyProbe(sim.controllers["bram0"])
        assert determinism_report(probe) == "no guarded accesses observed"

    def test_throughput_probe(self):
        design = compile_design(forwarding_source(2))
        sim = build_simulation(design, functions=forwarding_functions())
        for __ in range(5):
            sim.inject(
                "eth_in",
                {"dst_addr": 0x0A000001, "ttl": 9, "length": 64},
            )
        sim.run(300)
        probe = ThroughputProbe(interfaces=[sim.tx["eth_out"]])
        assert probe.total_messages() == 5
        assert 0 < probe.throughput(300) < 1
        assert len(probe.latencies()) == 4

    def test_throughput_zero_cycles(self):
        assert ThroughputProbe().throughput(0) == 0.0

    def test_throughput_probe_zero_messages(self):
        design = compile_design(forwarding_source(2))
        sim = build_simulation(design, functions=forwarding_functions())
        sim.run(50)  # no traffic injected -> nothing forwarded
        probe = ThroughputProbe(interfaces=[sim.tx["eth_out"]])
        assert probe.total_messages() == 0
        assert probe.throughput(50) == 0.0
        assert probe.latencies() == []

    def test_controller_stats_from_empty_waits(self):
        from repro.core.controller import ControllerStats

        stats = ControllerStats.from_waits([])
        assert stats.count == 0
        assert stats.min_wait == 0 and stats.max_wait == 0
        assert stats.mean_wait == 0.0
        assert stats.deterministic

    def test_summary_observed_flag(self):
        sim = self.make_run(Organization.ARBITRATED)
        probe = ConsumerLatencyProbe(sim.controllers["bram0"])
        assert all(s.observed for s in probe.summaries())

    def test_include_declared_lists_silent_consumers(self, figure1_source):
        # No traffic -> consumers are declared in the deplist but never
        # complete a guarded read.
        design = compile_design(figure1_source)
        sim = build_simulation(design)
        probe = ConsumerLatencyProbe(sim.controllers["bram0"])
        declared = probe.summaries(include_declared=True)
        silent = [s for s in declared if not s.observed]
        assert silent and all(s.waits == [] for s in silent)
        text = determinism_report(probe, include_declared=True)
        assert "n/a (no samples observed)" in text

    def test_include_declared_event_driven_schedule(self):
        design = compile_design(
            make_fanout_source(3), organization=Organization.EVENT_DRIVEN
        )
        sim = build_simulation(design)
        probe = ConsumerLatencyProbe(
            sim.controllers["bram0"], guarded_ports=("C", "B")
        )
        declared = probe.summaries(include_declared=True)
        assert {s.thread for s in declared} >= {"c0", "c1", "c2"}


class TestVcd:
    def test_header_and_changes(self):
        vcd = VcdWriter(timescale="8 ns")
        value = {"v": 0}
        vcd.add_signal("state", 4, lambda: value["v"])
        vcd.sample_all(0)
        value["v"] = 3
        vcd.sample_all(1)
        vcd.sample_all(2)  # no change -> no emission
        text = vcd.render()
        assert "$timescale 8 ns $end" in text
        assert "$var wire 4" in text
        assert "#0" in text and "#1" in text and "#2" not in text
        assert "b0011" in text

    def test_single_bit_format(self):
        vcd = VcdWriter()
        vcd.add_signal("flag", 1, lambda: 1)
        vcd.sample_all(0)
        lines = vcd.render().splitlines()
        assert any(line.startswith("1") and len(line) <= 3 for line in lines)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            VcdWriter().add_signal("x", 0, lambda: 0)

    def test_identifiers_past_single_char_space(self):
        # 94 printable identifier characters: signal 94 wraps to "!!".
        from repro.sim.vcd import _identifier

        assert _identifier(0) == "!"
        assert _identifier(93) == "~"
        assert _identifier(94) == "!!"
        assert _identifier(95) == '"!'

    def test_many_signals_get_unique_identifiers(self):
        vcd = VcdWriter()
        for i in range(200):
            vcd.add_signal(f"s{i}", 1, lambda i=i: i % 2)
        idents = [sig.ident for sig in vcd._signals]
        assert len(set(idents)) == 200
        assert any(len(ident) == 2 for ident in idents)
        vcd.sample_all(0)
        text = vcd.render()
        assert text.count("$var") == 200

    def test_constant_signal_emitted_once(self):
        vcd = VcdWriter()
        vcd.add_signal("const", 4, lambda: 7)
        for t in range(5):
            vcd.sample_all(t)
        text = vcd.render()
        # Initial value appears at #0; no later timestamps since nothing
        # ever changes again.
        assert "#0" in text
        for t in range(1, 5):
            assert f"#{t}" not in text
        assert text.count("b0111") == 1

    def test_kernel_hook_integration(self, figure1_source, tmp_path):
        design = compile_design(figure1_source)
        sim = build_simulation(design)
        vcd = VcdWriter(timescale="8 ns")
        for name, executor in sim.executors.items():
            states = sorted(executor.fsm.states)
            vcd.add_signal(
                f"{name}.state",
                8,
                lambda ex=executor, st=states: st.index(ex.state_name),
            )
        sim.kernel.add_post_cycle_hook(vcd.hook)
        sim.run(30)
        path = tmp_path / "trace.vcd"
        vcd.write(str(path))
        content = path.read_text()
        assert "$enddefinitions" in content
        assert content.count("$var") == 3
