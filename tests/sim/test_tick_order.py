"""The kernel's component tick order is a stable, documented contract.

Executors tick in sorted thread-name order and controllers in sorted
controller-name order — per phase, on every kernel backend, regardless
of the insertion order of the dicts handed to the kernel.  Observer and
hook event streams are only comparable across runs (and across kernels:
``tests/differential/``) because of this; it must never regress to dict
insertion order.  See the module docstring of ``repro.sim.kernel``.
"""

from repro.sim import FastKernel, SimulationKernel


class _Stats:
    advances = 0


class _NoPark:
    kind = None


class RecordingExecutor:
    """Duck-typed executor that logs its phase calls."""

    def __init__(self, name, log):
        self.name = name
        self.log = log
        self._blocked = False
        self.stats = _Stats()

    def phase1(self, cycle):
        self.log.append(("phase1", self.name))

    def phase2(self, results):
        self.log.append(("phase2", self.name))

    def park_class(self):
        return _NoPark()


class RecordingController:
    """Duck-typed controller that logs its arbitrate calls."""

    def __init__(self, name, log):
        self.name = name
        self.log = log

    def arbitrate(self, cycle):
        self.log.append(("arbitrate", self.name))
        return {}

    def next_wake(self, cycle):
        return None


def scrambled(names, log, factory):
    """A dict built in deliberately unsorted insertion order."""
    ordering = sorted(names, reverse=True)
    return {name: factory(name, log) for name in ordering}


EXECUTOR_NAMES = ["zeta", "alpha", "mid"]
CONTROLLER_NAMES = ["bram9", "bram0", "bram5"]


def run_one_cycle(kernel_cls):
    log = []
    kernel = kernel_cls(
        executors=scrambled(EXECUTOR_NAMES, log, RecordingExecutor),
        controllers=scrambled(CONTROLLER_NAMES, log, RecordingController),
    )
    kernel.step()
    return log


def expected_cycle_log():
    return (
        [("phase1", name) for name in sorted(EXECUTOR_NAMES)]
        + [("arbitrate", name) for name in sorted(CONTROLLER_NAMES)]
        + [("phase2", name) for name in sorted(EXECUTOR_NAMES)]
    )


def test_reference_kernel_ticks_in_sorted_order():
    assert run_one_cycle(SimulationKernel) == expected_cycle_log()


def test_wheel_kernel_ticks_in_sorted_order():
    assert run_one_cycle(FastKernel) == expected_cycle_log()


def test_order_is_insertion_order_independent():
    """Two kernels over the same components in different insertion
    orders must produce identical tick sequences."""
    logs = []
    for ordering in (EXECUTOR_NAMES, sorted(EXECUTOR_NAMES, reverse=True)):
        log = []
        kernel = SimulationKernel(
            executors={n: RecordingExecutor(n, log) for n in ordering},
            controllers={n: RecordingController(n, log) for n in CONTROLLER_NAMES},
        )
        kernel.step()
        logs.append(log)
    assert logs[0] == logs[1]


def test_hooks_fire_around_sorted_phases():
    """Pre hooks run before any phase-1 call, post hooks after every
    phase-2 call — bracketing the sorted component order."""
    log = []
    kernel = SimulationKernel(
        executors=scrambled(EXECUTOR_NAMES, log, RecordingExecutor),
        controllers=scrambled(CONTROLLER_NAMES, log, RecordingController),
    )
    kernel.add_pre_cycle_hook(lambda c, k: log.append(("pre", c)))
    kernel.add_post_cycle_hook(lambda c, k: log.append(("post", c)))
    kernel.step()
    assert log == [("pre", 0)] + expected_cycle_log() + [("post", 0)]
