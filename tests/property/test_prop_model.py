"""Property tests: analytical-model monotonicity, no simulation.

Every property here is stated in the physics-honest direction.  In
particular, *consumer wait decreases as the traffic rate rises* below
saturation (a consumer parked on a guarded read waits for the *next*
packet, so sparser traffic means longer waits) — so the wait
monotonicities are asserted on the **saturated** round, where more
contention can only stretch the period:

* saturated wait is non-decreasing in the consumer count, the off-chip
  latency, and the crossbar link latency;
* end-to-end latency is non-decreasing in the traffic rate (queueing
  delay grows with utilization) while it stays finite;
* sustained throughput is non-decreasing in the bank count and in the
  offered rate;
* predictions are pure: same parameters, byte-identical summary.

These run on :func:`~repro.model.predict` and
:func:`~repro.model.organizations.saturated_round` alone — thousands of
examples cost milliseconds, which is the point of a closed form.
"""

from hypothesis import given, settings, strategies as st

from repro.core.advisor import Organization
from repro.model import ModelParameters, predict, saturated_round

#: The lock baseline switches into its spin-storm envelope at four
#: consumers; the envelope is calibrated, not derived, so the strict
#: per-organization monotonicities are asserted on the derived regime
#: and the storm regime separately (the boundary itself is a model
#: seam, documented in docs/performance_model.md).
ORGS = st.sampled_from(list(Organization))

consumers_st = st.integers(min_value=1, max_value=12)
loops_st = st.integers(min_value=2, max_value=30)
accesses_st = st.integers(min_value=1, max_value=10)
banks_st = st.integers(min_value=0, max_value=8)
link_st = st.integers(min_value=1, max_value=5)
offchip_st = st.integers(min_value=0, max_value=40)
rate_st = st.floats(
    min_value=0.001, max_value=1.0, allow_nan=False, allow_infinity=False
)


def params(org, consumers, producer_loop, consumer_loop, accesses, **kw):
    return ModelParameters(
        organization=org,
        consumers=consumers,
        producer_loop=producer_loop,
        consumer_loop=consumer_loop,
        producer_accesses=accesses,
        **kw,
    )


@settings(max_examples=60, deadline=None)
@given(ORGS, consumers_st, loops_st, loops_st, accesses_st, banks_st)
def test_saturated_wait_non_decreasing_in_consumers(
    org, consumers, p_loop, c_loop, accesses, banks
):
    """One more consumer can only add contention to the round."""
    base = params(org, consumers, p_loop, c_loop, accesses, banks=banks)
    more = base.with_config(consumers=consumers + 1)
    assert (
        saturated_round(more).consumer_wait
        >= saturated_round(base).consumer_wait
    )


@settings(max_examples=60, deadline=None)
@given(ORGS, consumers_st, loops_st, loops_st, accesses_st, offchip_st)
def test_saturated_wait_non_decreasing_in_offchip_latency(
    org, consumers, p_loop, c_loop, accesses, offchip
):
    base = params(
        org, consumers, p_loop, c_loop, accesses,
        offchip_accesses=1, offchip_latency=offchip,
    )
    slower = base.with_config(offchip_latency=offchip + 5)
    assert (
        saturated_round(slower).consumer_wait
        >= saturated_round(base).consumer_wait
    )


@settings(max_examples=60, deadline=None)
@given(ORGS, consumers_st, loops_st, loops_st, accesses_st, link_st)
def test_saturated_wait_non_decreasing_in_link_latency(
    org, consumers, p_loop, c_loop, accesses, link
):
    """Every crossbar transit pays the link, so a slower fabric can only
    lengthen the saturated round."""
    base = params(
        org, consumers, p_loop, c_loop, accesses,
        banks=2, link_latency=link,
    )
    slower = base.with_config(link_latency=link + 1)
    assert (
        saturated_round(slower).consumer_wait
        >= saturated_round(base).consumer_wait
    )


@settings(max_examples=60, deadline=None)
@given(ORGS, consumers_st, loops_st, loops_st, accesses_st, rate_st)
def test_e2e_latency_non_decreasing_in_rate(
    org, consumers, p_loop, c_loop, accesses, rate
):
    """Queueing delay grows with utilization while the system is stable;
    past saturation the prediction degrades to None (unbounded)."""
    base = params(
        org, consumers, p_loop, c_loop, accesses, traffic_rate=rate
    )
    busier = base.with_config(traffic_rate=min(1.0, rate * 1.25))
    lo = predict(base).e2e_latency
    hi = predict(busier).e2e_latency
    if hi is None:
        return  # saturated at the higher rate: latency is unbounded
    assert lo is not None
    assert hi >= lo - 1e-9


@settings(max_examples=60, deadline=None)
@given(ORGS, consumers_st, loops_st, loops_st, accesses_st, rate_st)
def test_throughput_non_decreasing_in_rate(
    org, consumers, p_loop, c_loop, accesses, rate
):
    """Offering more traffic never reduces delivered throughput: it is
    min(rate, 1/period) and the period ignores the rate."""
    base = params(
        org, consumers, p_loop, c_loop, accesses, traffic_rate=rate
    )
    busier = base.with_config(traffic_rate=min(1.0, rate * 1.25))
    assert predict(busier).throughput >= predict(base).throughput - 1e-12


@settings(max_examples=60, deadline=None)
@given(
    ORGS, consumers_st, loops_st, loops_st, accesses_st,
    st.integers(min_value=1, max_value=4),
)
def test_throughput_non_decreasing_in_banks(
    org, consumers, p_loop, c_loop, accesses, banks
):
    """More banks widen the serialization bottleneck and touch nothing
    else, so saturated throughput can only go up."""
    base = params(
        org, consumers, p_loop, c_loop, accesses,
        banks=banks, traffic_rate=1.0,
    )
    wider = base.with_config(banks=banks * 2)
    assert predict(wider).throughput >= predict(base).throughput - 1e-12


@settings(max_examples=40, deadline=None)
@given(ORGS, consumers_st, loops_st, loops_st, accesses_st, rate_st)
def test_prediction_is_pure(
    org, consumers, p_loop, c_loop, accesses, rate
):
    p = params(org, consumers, p_loop, c_loop, accesses, traffic_rate=rate)
    assert predict(p).summary_json() == predict(p).summary_json()


@settings(max_examples=40, deadline=None)
@given(ORGS, consumers_st, loops_st, loops_st, accesses_st, banks_st, rate_st)
def test_fractions_always_conserve(
    org, consumers, p_loop, c_loop, accesses, banks, rate
):
    fractions = predict(
        params(
            org, consumers, p_loop, c_loop, accesses,
            banks=banks, traffic_rate=rate,
        )
    ).fractions
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    assert all(value >= -1e-12 for value in fractions.values())
