"""Property test: cycle-attribution conservation.

Whatever the memory organization, bank count, simulation kernel, or
traffic schedule, the profiler must attribute every simulated cycle of
every thread to exactly one wait state — no cycle lost, none double
booked — and the per-(thread, state, site, port) cells must sum back to
the per-thread timeline lengths.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import BernoulliTraffic, demo_table, forwarding_functions, forwarding_source
from repro.obs.attribution import WAIT_STATES

ORGANIZATIONS = [
    Organization.ARBITRATED,
    Organization.EVENT_DRIVEN,
    Organization.LOCK_BASELINE,
]


@settings(max_examples=12, deadline=None)
@given(
    organization=st.sampled_from(ORGANIZATIONS),
    num_banks=st.sampled_from([0, 2]),
    kernel=st.sampled_from(["reference", "wheel"]),
    seed=st.integers(min_value=0, max_value=2**16),
    cycles=st.integers(min_value=50, max_value=300),
)
def test_attribution_conserves_every_cycle(
    organization, num_banks, kernel, seed, cycles
):
    design = compile_design(
        forwarding_source(3), organization=organization, num_banks=num_banks
    )
    sim = build_simulation(
        design, functions=forwarding_functions(demo_table()), kernel=kernel
    )
    profiler = sim.attach_profiler()
    generator = BernoulliTraffic(rate=0.1, seed=seed)
    sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
    sim.run(cycles)

    report = profiler.conservation_report()
    assert report["ok"], report
    assert profiler.cycles_observed == cycles

    ledger = profiler.ledger
    totals = ledger.thread_totals()
    for name, executor in sim.kernel.executors.items():
        assert totals[name] == executor.stats.cycles == cycles

    # Cells and timelines are two views of the same booking stream.
    for thread, timeline in ledger.timelines.items():
        cell_sum = sum(
            count for key, count in ledger.cells.items() if key[0] == thread
        )
        segment_sum = sum(segment.length for segment in timeline)
        assert cell_sum == segment_sum == totals[thread]
        # Segments are contiguous, non-overlapping, and start at 0.
        cursor = timeline[0].start
        assert cursor == 0
        for segment in timeline:
            assert segment.start == cursor
            assert segment.length > 0
            cursor = segment.end
        assert cursor == cycles

    for key in ledger.cells:
        assert key[1] in WAIT_STATES
