"""Property tests: whole-simulation invariants.

Over the scenario family (consumer fan-out, organization, run length):

* determinism: two identical runs produce identical observable state;
* conservation: guarded reads per dependency never exceed dn x writes;
* progress: with free-running threads, every consumer completes rounds;
* FSM structural invariants hold for every synthesized thread.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.synth.fsm import MemReadOp, MemWriteOp
from tests.conftest import make_fanout_source

ORGS = [Organization.ARBITRATED, Organization.EVENT_DRIVEN]


def run(consumers, organization, cycles):
    design = compile_design(
        make_fanout_source(consumers), organization=organization
    )
    sim = build_simulation(design)
    sim.run(cycles)
    return sim


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.sampled_from(ORGS),
    st.integers(min_value=50, max_value=300),
)
def test_simulation_is_deterministic(consumers, organization, cycles):
    def observable(sim):
        return (
            {name: dict(ex.env) for name, ex in sim.executors.items()},
            {
                name: [
                    (s.client, s.port, s.issue_cycle, s.grant_cycle)
                    for s in ctl.latency_samples
                ]
                for name, ctl in sim.controllers.items()
            },
        )

    first = observable(run(consumers, organization, cycles))
    second = observable(run(consumers, organization, cycles))
    assert first == second


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.sampled_from(ORGS),
    st.integers(min_value=100, max_value=400),
)
def test_read_write_conservation(consumers, organization, cycles):
    sim = run(consumers, organization, cycles)
    controller = sim.controllers["bram0"]
    if organization is Organization.ARBITRATED:
        writes = [s for s in controller.latency_samples if s.port == "D"]
        reads = [s for s in controller.latency_samples if s.port == "C"]
    else:
        writes = [
            s
            for s in controller.latency_samples
            if s.port == "B" and s.client == "producer"
        ]
        reads = [
            s
            for s in controller.latency_samples
            if s.port == "B" and s.client != "producer"
        ]
    assert len(reads) <= consumers * len(writes)
    if writes:
        # At most one full produce-consume cycle can be in flight.
        assert len(reads) >= consumers * (len(writes) - 1)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.sampled_from(ORGS),
)
def test_progress_under_free_running_threads(consumers, organization):
    sim = run(consumers, organization, 400)
    for i in range(consumers):
        assert sim.executors[f"c{i}"].stats.rounds_completed > 0


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=1, max_value=8))
def test_fsm_structural_invariants(consumers):
    design = compile_design(make_fanout_source(consumers))
    for fsm in design.fsms.values():
        names = set(fsm.states)
        assert fsm.initial in names
        for state in fsm.states.values():
            # At most one memory access per state (the paper's discipline).
            assert len(state.memory_ops) <= 1
            # All transitions target existing states; the default (last)
            # transition of a multi-way branch is unguarded.
            for tr in state.transitions:
                assert tr.target in names
            if state.transitions:
                assert state.transitions[-1].guard is None
            # Guarded ops carry their dependency id.
            for op in state.ops:
                if isinstance(op, (MemReadOp, MemWriteOp)) and op.guarded:
                    assert op.dep_id is not None
