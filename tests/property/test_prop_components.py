"""Property tests: arbiters, CAM, dependency list, packing, LPM.

These are the invariants the hardware relies on: arbitration fairness and
closure, CAM match correctness, guard-counter bounds, slice-packing
monotonicity, and longest-prefix-match agreement with a brute-force oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.core import ContentAddressableMemory, RoundRobinArbiter
from repro.fpga import pack
from repro.memory import DependencyEntry, DependencyList
from repro.net import LpmTable


# -- round-robin arbiter -------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.sets(st.integers(min_value=0, max_value=7)), min_size=1, max_size=30),
)
def test_arbiter_grant_is_always_a_requester(n_clients, request_rounds):
    clients = [f"c{i}" for i in range(n_clients)]
    arbiter = RoundRobinArbiter(clients)
    for indices in request_rounds:
        requesting = {f"c{i}" for i in indices if i < n_clients}
        winner = arbiter.grant(requesting)
        if requesting:
            assert winner in requesting
        else:
            assert winner is None


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=8))
def test_arbiter_starvation_freedom(n_clients):
    clients = [f"c{i}" for i in range(n_clients)]
    arbiter = RoundRobinArbiter(clients)
    # With everyone requesting, any window of n grants serves everyone.
    grants = [arbiter.grant(set(clients)) for __ in range(2 * n_clients)]
    for start in range(n_clients):
        window = set(grants[start : start + n_clients])
        assert window == set(clients)


# -- CAM -----------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=15),
                  st.integers(min_value=0, max_value=511)),
        max_size=20,
    ),
    st.integers(min_value=0, max_value=511),
)
def test_cam_search_matches_linear_scan(entries, writes, probe):
    cam = ContentAddressableMemory(entries=entries, key_bits=9)
    shadow = {}
    for row, key in writes:
        if row < entries:
            cam.write(row, key)
            shadow[row] = key
    expected = None
    for row in range(entries):
        if shadow.get(row) == probe:
            expected = row
            break
    assert cam.search(probe) == expected


# -- dependency list guard protocol ------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.sampled_from(["write", "read"]), max_size=60),
)
def test_guard_counter_stays_in_bounds(dn, operations):
    deplist = DependencyList(
        bram="b",
        entries=[
            DependencyEntry("d", dn, 0, "p", tuple(f"c{i}" for i in range(dn)))
        ],
    )
    entry = deplist.entries[0]
    for operation in operations:
        if operation == "write" and deplist.producer_write_allowed(0):
            deplist.note_producer_write(0)
        elif operation == "read" and deplist.consumer_read_allowed(0) \
                and deplist.match(0) is not None and entry.outstanding > 0:
            deplist.note_consumer_read(0)
        assert 0 <= entry.outstanding <= dn
        # Mutual exclusion of the two grants on a guarded address:
        assert not (
            deplist.producer_write_allowed(0)
            and entry.outstanding > 0
        )


# -- slice packing -------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=4000),
    st.integers(min_value=0, max_value=4000),
)
def test_packing_bounds(luts, ffs):
    result = pack(luts, ffs)
    if luts == 0 and ffs == 0:
        assert result.slices == 0
        return
    # Never below the perfect-packing bound, never absurdly above it.
    perfect = max((luts + 1) // 2, (ffs + 1) // 2)
    assert result.slices >= perfect
    assert result.slices <= perfect * 2 + 1


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2000),
    st.integers(min_value=0, max_value=2000),
    st.integers(min_value=1, max_value=500),
)
def test_packing_monotone_in_resources(luts, ffs, extra):
    base = pack(luts, ffs).slices
    assert pack(luts + extra, ffs).slices >= base
    assert pack(luts, ffs + extra).slices >= base


# -- LPM ------------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=0xFFFFFFFF),
            st.integers(min_value=0, max_value=32),
            st.integers(min_value=0, max_value=15),
        ),
        max_size=15,
    ),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_lpm_matches_bruteforce(routes, probe):
    table = LpmTable(default_port=99)
    entries = []
    for prefix, length, port in routes:
        mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        table.add_route(prefix, length, port)
        entries.append((prefix & mask, mask, length, port))

    best = None
    for masked, mask, length, port in entries:
        if probe & mask == masked:
            if best is None or length > best[0]:
                best = (length, port)
            elif length == best[0]:
                best = (length, port)  # later insert overwrites, like the table
    expected = best[1] if best is not None else 99
    assert table.lookup(probe) == expected
