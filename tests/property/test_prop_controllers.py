"""Property tests: safety invariants of the memory controllers.

Under arbitrary interleavings of producer/consumer request timing, every
controller must preserve the produce-consume protocol:

* a consumer read is granted only between a write and the exhaustion of
  its dependency number;
* each write is followed by exactly ``dn`` consumer-read grants before the
  next write grant;
* read data always equals the most recently granted write's data.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    ArbitratedController,
    EventDrivenController,
    MemRequest,
)
from repro.hic.pragmas import ConsumerRef, Dependency
from repro.memory import BlockRam, DependencyEntry, DependencyList


def make_arbitrated(consumers):
    names = [f"c{i}" for i in range(consumers)]
    deplist = DependencyList(
        bram="b",
        entries=[DependencyEntry("d", consumers, 0, "p", tuple(names))],
    )
    return ArbitratedController(BlockRam("b"), deplist, names, ["p"]), names


def make_event_driven(consumers):
    names = [f"c{i}" for i in range(consumers)]
    dep = Dependency(
        "d", "p", "x", tuple(ConsumerRef(n, f"v_{n}") for n in names)
    )
    return EventDrivenController(BlockRam("b"), [dep]), names


def drive(controller, names, producer_delays, consumer_delays, cycles=200,
          guarded_port_read="C", guarded_port_write="D"):
    """Replay a schedule: producer re-requests after each grant with the
    next delay; each consumer re-requests after its grant with its delay.
    Returns the grant log [(cycle, client, is_write, data)]."""
    log = []
    seq = 0
    producer_ready = producer_delays[0] if producer_delays else 0
    producer_idx = 0
    consumer_ready = {n: 0 for n in names}
    consumer_idx = {n: 0 for n in names}

    for cycle in range(cycles):
        if producer_ready is not None and cycle >= producer_ready:
            controller.submit(
                MemRequest("p", guarded_port_write, 0, True,
                           data=seq + 1, dep_id="d")
            )
        for name in names:
            if cycle >= consumer_ready[name]:
                controller.submit(
                    MemRequest(name, guarded_port_read, 0, False, dep_id="d")
                )
        results = controller.arbitrate(cycle)
        for client, result in results.items():
            if not result.granted:
                continue
            if client == "p":
                seq += 1
                log.append((cycle, "p", True, seq))
                producer_idx += 1
                if producer_idx < len(producer_delays):
                    producer_ready = cycle + 1 + producer_delays[producer_idx]
                else:
                    producer_ready = cycle + 1
            else:
                log.append((cycle, client, False, result.data))
                delays = consumer_delays.get(client, [])
                idx = consumer_idx[client]
                gap = delays[idx] if idx < len(delays) else 0
                consumer_idx[client] += 1
                consumer_ready[client] = cycle + 1 + gap
    return log


@st.composite
def schedules(draw):
    consumers = draw(st.integers(min_value=1, max_value=4))
    producer_delays = draw(
        st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=8)
    )
    consumer_delays = {
        f"c{i}": draw(
            st.lists(st.integers(min_value=0, max_value=5), max_size=8)
        )
        for i in range(consumers)
    }
    return consumers, producer_delays, consumer_delays


def check_protocol(log, consumers, names, per_consumer_once):
    """The shared safety assertions over a grant log.

    ``per_consumer_once`` is True only for the event-driven organization:
    its slot table structurally guarantees each consumer reads exactly once
    per write.  The arbitrated dependency list counts *reads*, not readers
    (§3.1: "count the number of consumer reads following each producer
    write"), so under skewed consumer timing one consumer may legally take
    two of the dn read grants — a faithful reproduction of the paper's
    mechanism, which relies on the consumers' run-to-completion structure
    to keep reads balanced.
    """
    outstanding = 0
    last_write_data = None
    reads_since_write = {n: 0 for n in names}
    for __, client, is_write, data in log:
        if is_write:
            assert outstanding == 0, "write granted before reads drained"
            outstanding = consumers
            last_write_data = data
            reads_since_write = {n: 0 for n in names}
        else:
            assert outstanding > 0, "read granted without produced data"
            assert data == last_write_data, "stale or torn read"
            if per_consumer_once:
                assert reads_since_write[client] == 0, \
                    "consumer read twice in one produce-consume cycle"
            reads_since_write[client] += 1
            outstanding -= 1


@settings(max_examples=30, deadline=None)
@given(schedules())
def test_arbitrated_protocol_safety(schedule):
    consumers, producer_delays, consumer_delays = schedule
    controller, names = make_arbitrated(consumers)
    log = drive(controller, names, producer_delays, consumer_delays)
    assert any(entry[2] for entry in log), "producer never granted"
    check_protocol(log, consumers, names, per_consumer_once=False)


@settings(max_examples=30, deadline=None)
@given(schedules())
def test_event_driven_protocol_safety(schedule):
    consumers, producer_delays, consumer_delays = schedule
    controller, names = make_event_driven(consumers)
    log = drive(
        controller,
        names,
        producer_delays,
        consumer_delays,
        guarded_port_read="B",
        guarded_port_write="B",
    )
    assert any(entry[2] for entry in log), "producer never granted"
    check_protocol(log, consumers, names, per_consumer_once=True)


@settings(max_examples=30, deadline=None)
@given(schedules())
def test_event_driven_grant_order_follows_slot_table(schedule):
    consumers, producer_delays, consumer_delays = schedule
    controller, names = make_event_driven(consumers)
    log = drive(
        controller,
        names,
        producer_delays,
        consumer_delays,
        guarded_port_read="B",
        guarded_port_write="B",
    )
    # Grants must cycle p, c0, c1, ..., c{n-1}, p, c0, ...
    expected_cycle = ["p"] + names
    for i, (__, client, __w, __d) in enumerate(log):
        assert client == expected_cycle[i % len(expected_cycle)]
