"""Property tests: expression parsing and evaluation.

Random expression trees are rendered to hic text, parsed back, and
evaluated by the simulator's executor; the result must match a reference
evaluation with two's-complement 32-bit semantics.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.sim import to_signed, to_unsigned

MASK32 = (1 << 32) - 1

#: Operators whose reference semantics we replicate exactly.
_BINOPS = ["+", "-", "*", "&", "|", "^", "<", "<=", ">", ">=", "==", "!="]


@st.composite
def expr_trees(draw, depth=0):
    """(text, reference_value) pairs for random expressions."""
    if depth >= 3 or draw(st.booleans()):
        value = draw(st.integers(min_value=0, max_value=2**31 - 1))
        return str(value), value
    op = draw(st.sampled_from(_BINOPS))
    left_text, left_val = draw(expr_trees(depth=depth + 1))
    right_text, right_val = draw(expr_trees(depth=depth + 1))
    text = f"({left_text} {op} {right_text})"
    sl, sr = to_signed(left_val), to_signed(right_val)
    if op == "+":
        value = to_unsigned(sl + sr)
    elif op == "-":
        value = to_unsigned(sl - sr)
    elif op == "*":
        value = to_unsigned(sl * sr)
    elif op == "&":
        value = left_val & right_val
    elif op == "|":
        value = left_val | right_val
    elif op == "^":
        value = left_val ^ right_val
    elif op == "<":
        value = int(sl < sr)
    elif op == "<=":
        value = int(sl <= sr)
    elif op == ">":
        value = int(sl > sr)
    elif op == ">=":
        value = int(sl >= sr)
    elif op == "==":
        value = int(left_val == right_val)
    else:
        value = int(left_val != right_val)
    return text, value


@settings(max_examples=40, deadline=None)
@given(expr_trees())
def test_expression_evaluation_matches_reference(tree):
    text, expected = tree
    source = f"thread t () {{ int x; x = {text}; }}"
    design = compile_design(source)
    sim = build_simulation(design)
    sim.run(4)
    assert sim.executors["t"].env["x"] == expected


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
def test_signed_conversion_involution(a, b):
    assert to_signed(to_unsigned(a)) == a
    assert to_unsigned(to_signed(to_unsigned(b))) == to_unsigned(b)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_literal_roundtrip_through_parser(value):
    source = f"thread t () {{ int x; x = {value}; }}"
    design = compile_design(source)
    sim = build_simulation(design)
    sim.run(3)
    assert sim.executors["t"].env["x"] == value
