"""Property tests: front-end robustness.

The lexer and parser must be total: any input either parses or raises a
located ``HicError`` — never an unhandled exception.  Valid programs
generated from the grammar must round-trip through analysis.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.hic import HicError, analyze, parse, tokenize
from repro.hic.errors import HicSyntaxError


@settings(max_examples=80, deadline=None)
@given(st.text(max_size=200))
def test_lexer_total_over_arbitrary_text(text):
    try:
        tokens = tokenize(text)
        assert tokens[-1].kind.name == "EOF"
    except HicSyntaxError as error:
        assert error.location.line >= 1


@settings(max_examples=80, deadline=None)
@given(
    st.text(
        alphabet=string.ascii_letters + string.digits + " \n\t(){}[];,=+-*/<>!&|#'\"",
        max_size=300,
    )
)
def test_parser_total_over_token_soup(text):
    try:
        parse(text)
    except HicError as error:
        assert error.location.line >= 1


_IDENT = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s
    not in {
        "thread", "int", "char", "message", "type", "union", "if", "else",
        "case", "of", "default", "for", "while", "return", "break",
        "continue", "receive", "transmit", "true", "false", "bool",
    }
)


@st.composite
def valid_threads(draw):
    """Generate a small valid single-thread program."""
    names = sorted(draw(st.sets(_IDENT, min_size=2, max_size=4)))
    decls = f"int {', '.join(names)};"
    statements = []
    count = draw(st.integers(min_value=1, max_value=4))
    for __ in range(count):
        target = draw(st.sampled_from(names))
        left = draw(st.sampled_from(names))
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        literal = draw(st.integers(min_value=0, max_value=255))
        statements.append(f"{target} = {left} {op} {literal};")
    body = "\n  ".join([decls] + statements)
    return f"thread t () {{\n  {body}\n}}"


@settings(max_examples=25, deadline=None)
@given(valid_threads())
def test_generated_programs_analyze_cleanly(source):
    checked = analyze(source)
    assert checked.program.thread_names() == ["t"]
    assert checked.dependencies == []


@settings(max_examples=15, deadline=None)
@given(valid_threads())
def test_generated_programs_compile_and_simulate(source):
    from repro.flow import build_simulation, compile_design

    design = compile_design(source)
    sim = build_simulation(design)
    sim.run(30)
    assert sim.executors["t"].stats.cycles == 30
