"""Property tests: channel classification and FIFO lowering.

For randomly generated pipeline shapes (stage count, simulated horizon),
the channel-aware synthesis must uphold two claims:

* **soundness of the classification** — every channel the classifier
  lowers to a FIFO really is single-writer in-order at simulation time:
  the runtime assertion harness (:class:`FifoChannelController` raises
  :class:`ChannelProtocolError` on any shape violation) stays silent,
  and each channel's popped sequence is a prefix of its pushed sequence;
* **value equivalence** — FIFO-lowered and forced-guarded synthesis
  deliver the exact same value sequence to every consumer: each stage's
  accumulator state matches at equal round counts.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.channels import ChannelClass, classify_channels
from repro.hic.semantic import analyze
from repro.memory.bram import BlockRam
from repro.memory.fifo import FifoChannelController
from repro.core.controller import MemRequest
from repro.core.errors import ChannelProtocolError
from repro.scenarios import (
    build_scenario_simulation,
    collect_round_snapshots,
    get_scenario,
    pipeline_source,
    scenario_functions,
)
from repro.flow import build_simulation, compile_design


def build_pipeline_sim(stages, channel_synthesis, kernel="wheel"):
    design = compile_design(
        pipeline_source(stages),
        name=f"pipeline{stages}",
        channel_synthesis=channel_synthesis,
    )
    return design, build_simulation(
        design, scenario_functions(), kernel=kernel
    )


@settings(max_examples=15, deadline=None)
@given(
    stages=st.integers(min_value=2, max_value=6),
    cycles=st.integers(min_value=50, max_value=400),
)
def test_fifo_channels_are_single_writer_in_order(stages, cycles):
    """Every FIFO-classified channel of a random pipeline verifies
    single-writer in-order at simulation time: the protocol harness
    raises on any violation, and popped == pushed prefix."""
    design, sim = build_pipeline_sim(stages, "fifo")
    # Every inter-stage channel of a pipeline classifies FIFO.
    fifo_decisions = [
        d for d in design.channel_decisions.values() if d.is_fifo
    ]
    assert len(fifo_decisions) == stages - 1
    sim.run(cycles)  # ChannelProtocolError would propagate out of here
    checked = 0
    for controller in sim.controllers.values():
        if isinstance(controller, FifoChannelController):
            assert controller.in_order()
            assert 0 <= controller.occupancy <= controller.depth
            checked += 1
    assert checked == stages - 1


@settings(max_examples=8, deadline=None)
@given(
    stages=st.integers(min_value=2, max_value=5),
    rounds=st.integers(min_value=5, max_value=40),
)
def test_fifo_and_guarded_synthesis_value_equivalent(stages, rounds):
    """FIFO-lowered vs forced-guarded synthesis consume identical value
    sequences: every stage's accumulator matches at equal rounds."""
    snapshots = {}
    for mode in ("guarded", "fifo"):
        __, sim = build_pipeline_sim(stages, mode)
        snapshots[mode] = collect_round_snapshots(sim, rounds)
    assert snapshots["guarded"] == snapshots["fifo"]


@settings(max_examples=20, deadline=None)
@given(stages=st.integers(min_value=2, max_value=8))
def test_pipeline_classification_is_all_fifo(stages):
    """Static claim, any pipeline depth: every inter-stage dependency of
    a generated pipeline satisfies all five FIFO rules."""
    checked = analyze(pipeline_source(stages))
    decisions = classify_channels(checked)
    assert len(decisions) == stages - 1
    assert all(
        d.channel_class is ChannelClass.FIFO for d in decisions.values()
    )


def test_protocol_harness_rejects_foreign_writer():
    """The runtime harness is real: a write from a thread other than the
    classified producer raises a structured ChannelProtocolError."""
    checked = analyze(pipeline_source(2))
    dep = checked.dependencies[0]
    controller = FifoChannelController(BlockRam("fifo_ch0"), dep)
    intruder = MemRequest(
        client="mallory",
        port="B",
        address=0,
        write=True,
        data=7,
        dep_id=dep.dep_id,
    )
    controller.submit(intruder)
    try:
        controller.arbitrate(0)
    except ChannelProtocolError as error:
        assert error.client == "mallory"
        assert error.dep_id == dep.dep_id
    else:
        raise AssertionError("foreign writer was not rejected")


def test_protocol_harness_rejects_untagged_access():
    checked = analyze(pipeline_source(2))
    dep = checked.dependencies[0]
    producer = dep.producer_thread
    controller = FifoChannelController(BlockRam("fifo_ch0"), dep)
    untagged = MemRequest(
        client=producer, port="B", address=0, write=True, data=7, dep_id=None
    )
    controller.submit(untagged)
    try:
        controller.arbitrate(0)
    except ChannelProtocolError as error:
        assert error.dep_id == dep.dep_id
    else:
        raise AssertionError("untagged access was not rejected")


def test_forced_guarded_pipeline_has_no_fifo_controllers():
    """`channel_synthesis='guarded'` really forces the paper machinery:
    no FIFO controller is instantiated and no dependency is lowered."""
    design, sim = build_pipeline_sim(4, "guarded")
    assert design.fifo_deps == {}
    assert design.memory_map.fifo_names == []
    assert not any(
        isinstance(c, FifoChannelController)
        for c in sim.controllers.values()
    )


def test_fanout_mixed_classification_runs_in_order():
    """The mixed scenario (broadcast + streams) keeps its guarded
    channel while the stream channels verify in-order."""
    scenario = get_scenario("fanout")
    design, sim = build_scenario_simulation(
        scenario, channel_synthesis="fifo"
    )
    sim.run(300)
    assert "bram0" in sim.controllers  # broadcast stays guarded
    fifo_controllers = [
        c
        for c in sim.controllers.values()
        if isinstance(c, FifoChannelController)
    ]
    assert len(fifo_controllers) == 3
    assert all(c.in_order() for c in fifo_controllers)
