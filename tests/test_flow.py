"""Unit tests for the end-to-end flow driver."""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import forwarding_source
from tests.conftest import make_fanout_source


class TestCompileDesign:
    def test_figure1_compiles(self, figure1_source):
        design = compile_design(figure1_source, name="fig1")
        assert design.name == "fig1"
        assert set(design.fsms) == {"t1", "t2", "t3"}
        assert design.memory_map.bram_count() == 1
        assert list(design.deplists["bram0"].entries)[0].dep_id == "mt1"

    def test_organization_selects_wrapper(self, figure1_source):
        arb = compile_design(
            figure1_source, organization=Organization.ARBITRATED
        )
        ed = compile_design(
            figure1_source, organization=Organization.EVENT_DRIVEN
        )
        lock = compile_design(
            figure1_source, organization=Organization.LOCK_BASELINE
        )
        assert "arbitrated" in arb.wrapper_modules["bram0"].name
        assert "event_driven" in ed.wrapper_modules["bram0"].name
        assert "lock" in lock.wrapper_modules["bram0"].name

    def test_deadlock_rejected_at_compile(self, deadlock_source):
        with pytest.raises(ValueError, match="deadlock"):
            compile_design(deadlock_source)

    def test_deadlock_check_can_be_skipped(self, deadlock_source):
        design = compile_design(deadlock_source, check_deadlock=False)
        assert design.checked is not None

    def test_area_report(self, figure1_source):
        design = compile_design(figure1_source)
        report = design.area_report("bram0")
        assert report.ffs == 66

    def test_timing_report(self, figure1_source):
        design = compile_design(figure1_source)
        report = design.timing_report("bram0")
        assert report.fmax_mhz > 125

    def test_utilization_fits_xc2vp20(self, figure1_source):
        design = compile_design(figure1_source)
        assert design.utilization().fits

    def test_verilog_emission(self, figure1_source):
        design = compile_design(figure1_source)
        text = design.verilog()
        assert "module design" in text
        assert "thread_t1" in text

    def test_hierarchy_rendering(self, figure1_source):
        design = compile_design(figure1_source)
        text = design.hierarchy()
        assert "arbitrated_wrapper" in text

    def test_dependency_graph_access(self, figure1_source):
        design = compile_design(figure1_source)
        graph = design.dependency_graph()
        assert graph.successors("t1") == ["t2", "t3"]

    def test_deplist_entries_parameter(self, figure1_source):
        small = compile_design(figure1_source, deplist_entries=2)
        large = compile_design(figure1_source, deplist_entries=16)
        assert (
            large.wrapper_modules["bram0"].total_ffs()
            > small.wrapper_modules["bram0"].total_ffs()
        )

    @pytest.mark.parametrize("consumers", [2, 4, 8])
    def test_wrapper_params_track_fanout(self, consumers):
        design = compile_design(make_fanout_source(consumers))
        wrapper = design.wrapper_modules["bram0"]
        assert wrapper.name.endswith(f"c{consumers}")


class TestBuildSimulation:
    def test_three_organizations_simulate(self, figure1_source):
        for org in Organization:
            design = compile_design(figure1_source, organization=org)
            sim = build_simulation(design)
            result = sim.run(200)
            assert result.cycles_run == 200
            # Every consumer thread must make progress under every org.
            assert sim.executors["t2"].stats.rounds_completed > 0

    def test_interfaces_created(self):
        design = compile_design(forwarding_source(2))
        sim = build_simulation(design)
        assert set(sim.rx) == {"eth_in", "eth_out"}
        assert set(sim.tx) == {"eth_in", "eth_out"}

    def test_inject_unknown_interface(self, figure1_source):
        design = compile_design(figure1_source)
        sim = build_simulation(design)
        with pytest.raises(KeyError):
            sim.inject("ghost", {})

    def test_executors_share_controllers(self, figure1_source):
        design = compile_design(figure1_source)
        sim = build_simulation(design)
        assert set(sim.controllers) == {"bram0"}
        assert len(sim.executors) == 3
