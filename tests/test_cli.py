"""Unit tests for the ``python -m repro`` command-line driver."""

import json

import pytest

from repro.__main__ import main
from tests.conftest import DEADLOCK_SOURCE, FIGURE1_SOURCE


@pytest.fixture
def figure1_file(tmp_path):
    path = tmp_path / "fig1.hic"
    path.write_text(FIGURE1_SOURCE)
    return str(path)


class TestCli:
    def test_compile_only(self, figure1_file, capsys):
        assert main([figure1_file]) == 0
        out = capsys.readouterr().out
        assert "3 threads" in out
        assert "FF=66" in out

    def test_event_driven_option(self, figure1_file, capsys):
        assert main([figure1_file, "--organization", "event_driven"]) == 0
        assert "event_driven_wrapper" in capsys.readouterr().out

    def test_simulate_option(self, figure1_file, capsys):
        assert main([figure1_file, "--simulate", "50"]) == 0
        out = capsys.readouterr().out
        assert "simulated 50 cycles" in out
        assert "rounds" in out

    def test_verilog_output(self, figure1_file, tmp_path, capsys):
        target = tmp_path / "out.v"
        assert main([figure1_file, "--verilog", str(target)]) == 0
        assert "endmodule" in target.read_text()

    def test_vcd_output(self, figure1_file, tmp_path):
        target = tmp_path / "trace.vcd"
        assert main(
            [figure1_file, "--simulate", "30", "--vcd", str(target)]
        ) == 0
        assert "$enddefinitions" in target.read_text()

    def test_deplist_entries_option(self, figure1_file, capsys):
        assert main([figure1_file, "--deplist-entries", "8"]) == 0
        out = capsys.readouterr().out
        # 8 entries x 14 FF + 10 fixed = 122 FFs
        assert "FF=122" in out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/file.hic"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_syntax_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.hic"
        path.write_text("thread t () { int x; x = ; }")
        assert main([str(path)]) == 1
        assert "error" in capsys.readouterr().err

    def test_deadlock_rejected(self, tmp_path, capsys):
        path = tmp_path / "deadlock.hic"
        path.write_text(DEADLOCK_SOURCE)
        assert main([str(path)]) == 1
        assert "deadlock" in capsys.readouterr().err

    def test_deadlock_check_skippable(self, tmp_path):
        path = tmp_path / "deadlock.hic"
        path.write_text(DEADLOCK_SOURCE)
        assert main([str(path), "--no-deadlock-check"]) == 0


class TestCliTelemetry:
    def test_trace_json_implies_simulate(self, figure1_file, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main([figure1_file, "--trace-json", str(target)]) == 0
        out = capsys.readouterr().out
        assert "simulated 1000 cycles" in out
        assert "wrote Chrome trace" in out
        document = json.loads(target.read_text())
        assert document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"

    def test_all_telemetry_outputs(self, figure1_file, tmp_path):
        trace = tmp_path / "t.json"
        prom = tmp_path / "m.prom"
        summary = tmp_path / "s.json"
        csv = tmp_path / "m.csv"
        assert main([
            figure1_file, "--simulate", "200",
            "--trace-json", str(trace),
            "--metrics", str(prom),
            "--summary-json", str(summary),
            "--summary-csv", str(csv),
        ]) == 0
        assert "sim_cycles 200" in prom.read_text()
        assert json.loads(summary.read_text())["schema"] == (
            "repro.obs.summary/1"
        )
        assert csv.read_text().startswith("metric,")

    def test_traffic_rate_drives_ingress(self, figure1_file, tmp_path):
        prom = tmp_path / "m.prom"
        assert main([
            figure1_file, "--simulate", "300",
            "--traffic-rate", "0.1", "--metrics", str(prom),
        ]) == 0
        text = prom.read_text()
        assert "sim_requests_granted_total" in text

    def test_trace_level_full(self, figure1_file, tmp_path):
        deps = tmp_path / "deps.json"
        full = tmp_path / "full.json"
        assert main([figure1_file, "--simulate", "200",
                     "--trace-json", str(deps)]) == 0
        assert main([figure1_file, "--simulate", "200",
                     "--trace-json", str(full),
                     "--trace-level", "full"]) == 0
        assert len(full.read_bytes()) > len(deps.read_bytes())

    def test_max_wall_seconds_times_out(self, figure1_file, capsys):
        code = main(
            [figure1_file, "--simulate", "100000",
             "--max-wall-seconds", "0"]
        )
        assert code == 1
        assert "simulation-timeout" in capsys.readouterr().err

    def test_max_wall_seconds_generous_budget_completes(
        self, figure1_file, capsys
    ):
        code = main(
            [figure1_file, "--simulate", "50", "--max-wall-seconds", "60"]
        )
        assert code == 0
        assert "simulated 50 cycles" in capsys.readouterr().out


class TestCliPredict:
    """``python -m repro predict`` — the analytical model's surface."""

    def test_single_prediction(self, figure1_file, capsys):
        assert main(["predict", figure1_file]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "consumer wait" in out
        assert "wait-state fractions" in out

    def test_summary_json_is_byte_deterministic(
        self, figure1_file, tmp_path
    ):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        for target in (first, second):
            assert main(
                ["predict", figure1_file, "--banks", "2",
                 "--rate", "0.5", "--summary-json", str(target)]
            ) == 0
        assert first.read_bytes() == second.read_bytes()
        document = json.loads(first.read_text())
        assert document["schema"] == "repro.model.prediction/1"
        assert document["config"]["banks"] == 2

    def test_sweep_prints_frontier(self, figure1_file, capsys):
        assert main(
            ["predict", figure1_file, "--sweep",
             "--sweep-banks", "1", "--sweep-links", "1",
             "--sweep-rates", "0.9"]
        ) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out

    def test_rejects_nonpositive_banks(self, figure1_file, capsys):
        assert main(["predict", figure1_file, "--banks", "-2"]) == 2
        err = capsys.readouterr().err
        assert "parameter-error" in err
        assert "banks" in err

    def test_rejects_out_of_range_rate(self, figure1_file, capsys):
        assert main(["predict", figure1_file, "--rate", "1.5"]) == 2
        err = capsys.readouterr().err
        assert "parameter-error" in err
        assert "traffic_rate" in err

    def test_rejects_negative_link_latency(self, figure1_file, capsys):
        assert main(
            ["predict", figure1_file, "--link-latency", "-1"]
        ) == 2
        assert "parameter-error" in capsys.readouterr().err

    def test_missing_source_without_validate(self, capsys):
        assert main(["predict"]) == 2
        assert "source" in capsys.readouterr().err

    def test_missing_file_reported(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["predict", "/nonexistent/file.hic"])
        assert excinfo.value.code == 2
        assert "cannot read" in capsys.readouterr().err


class TestKernelOption:
    """``--kernel`` is an explicit-choices option on every subcommand:
    an unknown backend dies in argparse with exit code 2 and the real
    choice list, never deep inside a run."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["{source}", "--simulate", "10", "--kernel", "bogus"],
            ["faults", "--runs", "1", "--kernel", "bogus"],
            ["profile", "{source}", "--kernel", "bogus"],
            ["predict", "{source}", "--validate", "--kernel", "bogus"],
        ],
        ids=["run", "faults", "profile", "predict"],
    )
    def test_unknown_kernel_exits_2(self, figure1_file, argv, capsys):
        argv = [a.format(source=figure1_file) for a in argv]
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'bogus'" in err
        assert "compiled" in err  # the choice list names every backend

    def test_run_accepts_compiled_kernel(self, figure1_file, capsys):
        assert main(
            [figure1_file, "--simulate", "40", "--kernel", "compiled"]
        ) == 0
        out = capsys.readouterr().out
        assert "simulated 40 cycles" in out
        assert "kernel: compiled" in out

    def test_compiled_kernel_report_counts_paths(self, figure1_file, capsys):
        # telemetry output attaches an observer, so the compiled kernel
        # must report interpreted cycles rather than pretending
        assert main(
            [
                figure1_file,
                "--simulate",
                "25",
                "--kernel",
                "compiled",
                "--trace-level",
                "deps",
            ]
        ) == 0
        assert "kernel: compiled" in capsys.readouterr().out


class TestScenarioOption:
    """``python -m repro run`` / ``scenarios``: `--scenario` and
    `--channel-synthesis` are explicit-choices options — an unknown
    value dies in argparse with exit code 2 and the real choice list,
    matching the ``--kernel`` hardening above."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "--scenario", "bogus"],
            ["scenarios", "--scenario", "bogus"],
        ],
        ids=["run", "scenarios"],
    )
    def test_unknown_scenario_exits_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'bogus'" in err
        assert "pipeline" in err  # the choice list names every scenario

    def test_unknown_channel_synthesis_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scenario", "pipeline",
                  "--channel-synthesis", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice: 'bogus'" in err
        assert "guarded" in err and "fifo" in err

    def test_unknown_kernel_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--scenario", "pipeline", "--kernel", "bogus"])
        assert excinfo.value.code == 2
        assert "invalid choice: 'bogus'" in capsys.readouterr().err

    def test_missing_scenario_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run"])
        assert excinfo.value.code == 2
        assert "--scenario" in capsys.readouterr().err

    @pytest.mark.parametrize("cycles", ["0", "-5"])
    def test_nonpositive_cycles_is_structured_parameter_error(
        self, cycles, capsys
    ):
        assert main(["run", "--scenario", "pipeline",
                     "--cycles", cycles]) == 2
        err = capsys.readouterr().err
        assert "parameter-error" in err
        assert "cycles" in err

    def test_run_pipeline_reports_fifo_channels(self, capsys):
        assert main(["run", "--scenario", "pipeline",
                     "--cycles", "200"]) == 0
        out = capsys.readouterr().out
        assert "3 fifo" in out
        assert "fifo_ch0" in out
        assert "rounds completed" in out

    def test_run_forced_guarded(self, capsys):
        assert main(["run", "--scenario", "pipeline", "--cycles", "200",
                     "--channel-synthesis", "guarded"]) == 0
        out = capsys.readouterr().out
        assert "channel synthesis 'guarded'" in out

    def test_run_compiled_kernel_writes_summary(self, tmp_path, capsys):
        target = tmp_path / "summary.json"
        assert main(["run", "--scenario", "fanout", "--cycles", "200",
                     "--kernel", "compiled",
                     "--summary-json", str(target)]) == 0
        document = json.loads(target.read_text())
        assert document["schema"] == "repro.obs.summary/1"

    def test_scenarios_report_pipeline(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        assert main(["scenarios", "--scenario", "pipeline",
                     "--cycles", "200", "--json", str(target)]) == 0
        out = capsys.readouterr().out
        assert "FIFO" in out
        assert "sync area" in out
        document = json.loads(target.read_text())
        assert document["schema"] == "repro.scenarios.report/1"
        (report,) = document["reports"]
        assert report["scenario"] == "pipeline"
        # The acceptance claim: FIFO lowering saves synchronization area.
        assert report["area"]["delta_slices"] > 0
        assert all(c["class"] == "fifo" for c in report["channels"])
