"""Unit tests for the lock-based baseline controller."""

import pytest

from repro.core import LockBaselineController, MemRequest
from repro.memory import BlockRam, DependencyEntry, DependencyList


def make_controller(consumers=2):
    names = [f"c{i}" for i in range(consumers)]
    deplist = DependencyList(
        bram="bram0",
        entries=[DependencyEntry("d0", consumers, 0, "prod", tuple(names))],
    )
    controller = LockBaselineController(
        BlockRam("bram0"), deplist, ["prod"] + names
    )
    return controller, names


def run_until_granted(controller, requests, max_cycles=200):
    """Drive the controller until every request completes; returns
    client -> (grant_cycle, data)."""
    outcomes = {}
    pending = dict(requests)
    for cycle in range(max_cycles):
        for client, request in pending.items():
            controller.submit(request)
        results = controller.arbitrate(cycle)
        for client, result in results.items():
            if result.granted and client in pending:
                outcomes[client] = (cycle, result.data)
                del pending[client]
        if not pending:
            return outcomes
    raise AssertionError(f"requests never completed: {sorted(pending)}")


class TestProtocol:
    def test_write_then_reads_complete(self):
        controller, names = make_controller()
        outcomes = run_until_granted(
            controller,
            {"prod": MemRequest("prod", "G", 0, True, data=55, dep_id="d0")},
        )
        assert "prod" in outcomes
        outcomes = run_until_granted(
            controller,
            {
                name: MemRequest(name, "G", 0, False, dep_id="d0")
                for name in names
            },
        )
        assert all(data == 55 for __, data in outcomes.values())

    def test_consumer_spins_until_data_valid(self):
        controller, __ = make_controller(consumers=1)
        # Consumer alone: spins (acquire, probe-fail, backoff) forever.
        for cycle in range(12):
            controller.submit(MemRequest("c0", "G", 0, False, dep_id="d0"))
            results = controller.arbitrate(cycle)
            assert "c0" not in results
        assert controller.stats.failed_probes > 0
        assert controller.stats.spin_cycles > 0

    def test_minimum_three_cycles_per_access(self):
        # Uncontended write: acquire + access + release = 3 cycles.
        controller, __ = make_controller()
        outcomes = run_until_granted(
            controller,
            {"prod": MemRequest("prod", "G", 0, True, data=1, dep_id="d0")},
        )
        grant_cycle, __ = outcomes["prod"]
        assert grant_cycle == 2  # cycles 0,1,2

    def test_overhead_exceeds_guarded_port_cost(self):
        # The paper's wrappers complete a guarded access in one granted
        # cycle; the lock protocol can never beat three.
        controller, names = make_controller()
        run_until_granted(
            controller,
            {"prod": MemRequest("prod", "G", 0, True, data=1, dep_id="d0")},
        )
        run_until_granted(
            controller,
            {n: MemRequest(n, "G", 0, False, dep_id="d0") for n in names},
        )
        stats = controller.stats
        assert stats.useful_accesses == 3
        assert stats.overhead_per_access >= 3.0

    def test_producer_blocks_while_unconsumed(self):
        controller, __ = make_controller(consumers=1)
        run_until_granted(
            controller,
            {"prod": MemRequest("prod", "G", 0, True, data=1, dep_id="d0")},
        )
        # Second write spins until the consumer drains.
        for cycle in range(10, 20):
            controller.submit(MemRequest("prod", "G", 0, True, data=2, dep_id="d0"))
            assert "prod" not in controller.arbitrate(cycle)
        assert controller.stats.failed_probes > 0

    def test_mutual_exclusion_single_lock_holder(self):
        controller, names = make_controller(consumers=2)
        # Everyone contends; protocol must still serialize correctly.
        requests = {
            "prod": MemRequest("prod", "G", 0, True, data=9, dep_id="d0")
        }
        requests.update(
            {n: MemRequest(n, "G", 0, False, dep_id="d0") for n in names}
        )
        outcomes = run_until_granted(controller, requests)
        prod_cycle = outcomes["prod"][0]
        for name in names:
            assert outcomes[name][0] > prod_cycle
            assert outcomes[name][1] == 9


class TestAccounting:
    def test_port_a_bypasses_locks(self):
        controller, __ = make_controller()
        controller.submit(MemRequest("t", "A", 5, True, data=4))
        assert controller.arbitrate(0)["t"].granted
        assert controller.stats.protocol_cycles == 0

    def test_unknown_address_rejected(self):
        controller, __ = make_controller()
        controller.submit(MemRequest("c0", "G", 99, False, dep_id="d0"))
        with pytest.raises(KeyError):
            controller.arbitrate(0)

    def test_reset_clears_state(self):
        controller, __ = make_controller()
        run_until_granted(
            controller,
            {"prod": MemRequest("prod", "G", 0, True, data=1, dep_id="d0")},
        )
        controller.reset()
        assert controller.stats.useful_accesses == 0
        assert controller.latency_samples == []
