"""Unit tests for the modulo schedule and selection logic."""

import pytest

from repro.core import ModuloSchedule, SelectionLogic, SlotKind
from repro.hic.pragmas import ConsumerRef, Dependency


def two_dep_schedule():
    d0 = Dependency(
        "d0", "p0", "x", (ConsumerRef("c0", "v0"), ConsumerRef("c1", "v1"))
    )
    d1 = Dependency("d1", "p1", "y", (ConsumerRef("c2", "v2"),))
    return ModuloSchedule.build([d0, d1])


class TestScheduleTable:
    def test_slot_order_producer_then_consumers(self):
        schedule = two_dep_schedule()
        kinds = [slot.kind for slot in schedule.slots]
        assert kinds == [
            SlotKind.PRODUCER,
            SlotKind.CONSUMER,
            SlotKind.CONSUMER,
            SlotKind.PRODUCER,
            SlotKind.CONSUMER,
        ]

    def test_slot_threads(self):
        schedule = two_dep_schedule()
        assert [slot.thread for slot in schedule.slots] == [
            "p0",
            "c0",
            "c1",
            "p1",
            "c2",
        ]

    def test_consumer_rank_is_compile_time_order(self):
        schedule = two_dep_schedule()
        assert schedule.consumer_rank("d0", "c0") == 0
        assert schedule.consumer_rank("d0", "c1") == 1

    def test_unknown_consumer_rank(self):
        schedule = two_dep_schedule()
        with pytest.raises(KeyError):
            schedule.consumer_rank("d0", "ghost")

    def test_producer_slots(self):
        schedule = two_dep_schedule()
        assert len(schedule.producer_slots()) == 2

    def test_select_bits(self):
        schedule = two_dep_schedule()
        assert schedule.select_bits == 3  # 5 slots -> 3 bits

    def test_empty_schedule(self):
        schedule = ModuloSchedule.build([])
        assert len(schedule) == 0
        assert schedule.select_bits == 1


class TestSelectionLogic:
    def test_initial_slot_is_first_producer(self):
        logic = SelectionLogic(two_dep_schedule())
        assert logic.current.kind is SlotKind.PRODUCER
        assert logic.current.thread == "p0"

    def test_enabled_only_for_current_slot(self):
        logic = SelectionLogic(two_dep_schedule())
        assert logic.enabled("p0", "d0", is_producer=True)
        assert not logic.enabled("c0", "d0", is_producer=False)
        assert not logic.enabled("p1", "d1", is_producer=True)

    def test_event_chain_order(self):
        logic = SelectionLogic(two_dep_schedule())
        logic.advance()  # p0 wrote
        assert logic.enabled("c0", "d0", is_producer=False)
        logic.advance()  # c0 read
        assert logic.enabled("c1", "d0", is_producer=False)
        logic.advance()  # c1 read
        assert logic.enabled("p1", "d1", is_producer=True)

    def test_modulo_wraparound(self):
        logic = SelectionLogic(two_dep_schedule())
        for __ in range(5):
            logic.advance()
        assert logic.current.thread == "p0"

    def test_event_log(self):
        logic = SelectionLogic(two_dep_schedule())
        logic.advance(cycle=3)
        assert logic.event_log == [(3, "slot0:producer:p0(d0)")]

    def test_reset(self):
        logic = SelectionLogic(two_dep_schedule())
        logic.advance()
        logic.reset()
        assert logic.current.index == 0
        assert logic.event_log == []

    def test_empty_schedule_logic(self):
        logic = SelectionLogic(ModuloSchedule.build([]))
        assert logic.current is None
        assert logic.advance() is None
        assert not logic.enabled("x", "d", True)
