"""Unit tests for the round-robin and priority arbiters."""

import pytest

from repro.core import PriorityArbiter, RoundRobinArbiter


class TestRoundRobin:
    def test_single_requester_granted(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        assert arb.grant({"b"}) == "b"

    def test_no_requesters(self):
        arb = RoundRobinArbiter(["a"])
        assert arb.grant(set()) is None

    def test_rotation_is_fair(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        grants = [arb.grant({"a", "b", "c"}) for __ in range(6)]
        assert grants == ["a", "b", "c", "a", "b", "c"]

    def test_pointer_skips_idle_clients(self):
        arb = RoundRobinArbiter(["a", "b", "c"])
        assert arb.grant({"c"}) == "c"
        # Pointer is now past c; with all requesting, a goes next.
        assert arb.grant({"a", "b", "c"}) == "a"

    def test_starvation_freedom(self):
        arb = RoundRobinArbiter([f"t{i}" for i in range(8)])
        served = set()
        for __ in range(8):
            served.add(arb.grant({f"t{i}" for i in range(8)}))
        assert len(served) == 8

    def test_unknown_client_rejected(self):
        arb = RoundRobinArbiter(["a"])
        with pytest.raises(KeyError):
            arb.grant({"ghost"})

    def test_empty_client_list_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter([])

    def test_duplicate_clients_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(["a", "a"])

    def test_history_recorded(self):
        arb = RoundRobinArbiter(["a", "b"])
        arb.grant({"a"})
        arb.grant({"b"})
        assert arb.grant_history == ["a", "b"]

    def test_reset(self):
        arb = RoundRobinArbiter(["a", "b"])
        arb.grant({"b"})
        arb.reset()
        assert arb.grant_history == []
        assert arb.grant({"a", "b"}) == "a"

    def test_width(self):
        assert RoundRobinArbiter(["a", "b", "c"]).width == 3


class TestPriority:
    def test_d_beats_c_beats_b(self):
        arb = PriorityArbiter()
        assert arb.select({"B", "C", "D"}) == "D"
        assert arb.select({"B", "C"}) == "C"
        assert arb.select({"B"}) == "B"

    def test_empty(self):
        assert PriorityArbiter().select(set()) is None

    def test_custom_order(self):
        arb = PriorityArbiter(priority_order=("X", "Y"))
        assert arb.select({"Y", "X"}) == "X"
