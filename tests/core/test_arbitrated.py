"""Unit tests for the arbitrated memory organization (§3.1)."""

import pytest

from repro.core import ArbitratedController, MemRequest
from repro.memory import BlockRam, DependencyEntry, DependencyList


def make_controller(consumers=2, dn=None, extra_entries=()):
    names = [f"c{i}" for i in range(consumers)]
    entries = [
        DependencyEntry(
            "d0", dn or consumers, 0, "prod", tuple(names)
        )
    ]
    entries.extend(extra_entries)
    deplist = DependencyList(bram="bram0", entries=entries)
    bram = BlockRam("bram0")
    controller = ArbitratedController(bram, deplist, names, ["prod"])
    return controller, names


def read_req(client, address=0):
    return MemRequest(client, "C", address, False, dep_id="d0")


def write_req(data, address=0, client="prod"):
    return MemRequest(client, "D", address, True, data=data, dep_id="d0")


class TestGuardedProtocol:
    def test_consumer_blocks_until_producer_writes(self):
        controller, names = make_controller()
        controller.submit(read_req("c0"))
        results = controller.arbitrate(0)
        assert "c0" not in results

    def test_write_then_reads_drain(self):
        controller, names = make_controller()
        controller.submit(write_req(42))
        assert controller.arbitrate(0)["prod"].granted
        granted = []
        for cycle in range(1, 4):
            for name in names:
                if name not in granted:
                    controller.submit(read_req(name))
            results = controller.arbitrate(cycle)
            granted.extend(c for c, r in results.items() if r.granted)
        assert sorted(granted) == names

    def test_read_returns_written_data(self):
        controller, __ = make_controller()
        controller.submit(write_req(1234))
        controller.arbitrate(0)
        controller.submit(read_req("c0"))
        assert controller.arbitrate(1)["c0"].data == 1234

    def test_producer_blocked_until_consumers_drain(self):
        controller, names = make_controller()
        controller.submit(write_req(1))
        controller.arbitrate(0)
        # Second write must block while reads are outstanding.
        controller.submit(write_req(2))
        results = controller.arbitrate(1)
        assert "prod" not in results
        for cycle, name in enumerate(names, start=2):
            controller.submit(read_req(name))
            controller.arbitrate(cycle)
        controller.submit(write_req(2))
        assert controller.arbitrate(10)["prod"].granted

    def test_each_consumer_reads_once_per_write(self):
        controller, names = make_controller(consumers=2)
        controller.submit(write_req(7))
        controller.arbitrate(0)
        controller.submit(read_req("c0"))
        controller.arbitrate(1)
        controller.submit(read_req("c1"))
        controller.arbitrate(2)
        # dn exhausted: further reads block until the next write.
        controller.submit(read_req("c0"))
        assert "c0" not in controller.arbitrate(3)


class TestPriorities:
    def test_d_preempts_c(self):
        # Arm the guard, leave one outstanding read, then contend C vs D:
        # D cannot be granted (outstanding > 0) but C can.
        controller, __ = make_controller(consumers=1)
        controller.submit(write_req(5))
        controller.arbitrate(0)
        controller.submit(read_req("c0"))
        controller.submit(write_req(6))
        results = controller.arbitrate(1)
        # The blocked D does not stop the allowed C read.
        assert results["c0"].granted

    def test_d_wins_when_both_allowed(self):
        # Guard idle: D allowed; C blocked anyway (no data).  After the
        # write, C is allowed next cycle.
        controller, __ = make_controller(consumers=1)
        controller.submit(read_req("c0"))
        controller.submit(write_req(5))
        results = controller.arbitrate(0)
        assert results["prod"].granted
        assert "c0" not in results
        assert controller.override_count == 1

    def test_port_b_starved_by_c_requests(self):
        controller, __ = make_controller(consumers=1)
        controller.submit(read_req("c0"))  # blocked C request
        controller.submit(MemRequest("other", "B", 5, False))
        results = controller.arbitrate(0)
        # "A read or write on port B is allowed as long as there are no
        # current requests on port C or D."
        assert "other" not in results

    def test_port_b_served_when_quiet(self):
        controller, __ = make_controller(consumers=1)
        controller.submit(MemRequest("other", "B", 5, True, data=9))
        assert controller.arbitrate(0)["other"].granted

    def test_port_a_independent_of_port1_traffic(self):
        controller, __ = make_controller(consumers=1)
        controller.submit(write_req(5))
        controller.submit(MemRequest("t9", "A", 8, True, data=3))
        results = controller.arbitrate(0)
        assert results["prod"].granted and results["t9"].granted

    def test_unknown_port_rejected(self):
        controller, __ = make_controller()
        controller.submit(MemRequest("x", "Z", 0, False))
        with pytest.raises(ValueError):
            controller.arbitrate(0)


class TestArbitration:
    def test_round_robin_among_consumers(self):
        controller, names = make_controller(consumers=4, dn=4)
        controller.submit(write_req(1))
        controller.arbitrate(0)
        order = []
        for cycle in range(1, 5):
            for name in names:
                if name not in order:
                    controller.submit(read_req(name))
            results = controller.arbitrate(cycle)
            order.extend(c for c, r in results.items() if r.granted)
        assert order == names  # round robin serves in client order here

    def test_latency_is_nondeterministic_across_consumers(self):
        # The arbitration spreads grants across cycles: consumer waits differ.
        controller, names = make_controller(consumers=4, dn=4)
        controller.submit(write_req(1))
        controller.arbitrate(0)
        done = set()
        for cycle in range(1, 6):
            for name in names:
                if name not in done:
                    controller.submit(read_req(name))
            results = controller.arbitrate(cycle)
            done.update(results)
        waits = controller.waits_for(port="C")
        assert len(set(waits)) > 1

    def test_latency_samples_record_ports(self):
        controller, __ = make_controller(consumers=1)
        controller.submit(write_req(1))
        controller.arbitrate(0)
        controller.submit(read_req("c0"))
        controller.arbitrate(1)
        samples = controller.latency_samples
        assert {s.port for s in samples} == {"D", "C"}

    def test_reset(self):
        controller, __ = make_controller(consumers=1)
        controller.submit(write_req(1))
        controller.arbitrate(0)
        controller.reset()
        assert controller.latency_samples == []
        # Guard disarmed after reset: consumer blocks again.
        controller.submit(read_req("c0"))
        assert "c0" not in controller.arbitrate(0)


class TestPortARoundRobin:
    """Regression: the port-A arbiter used to be constructed but never
    consulted, so concurrent port-A requests were always resolved in favor
    of the lexicographically-first client."""

    def test_contending_clients_alternate(self):
        controller, __ = make_controller(consumers=1)
        winners = []
        for cycle in range(4):
            controller.submit(MemRequest("aa", "A", 1, False))
            controller.submit(MemRequest("zz", "A", 2, False))
            results = controller.arbitrate(cycle)
            winners.extend(c for c in ("aa", "zz") if c in results)
        assert winners == ["aa", "zz", "aa", "zz"]

    def test_loser_retains_its_issue_cycle(self):
        controller, __ = make_controller(consumers=1)
        controller.submit(MemRequest("aa", "A", 1, False))
        controller.submit(MemRequest("zz", "A", 2, False))
        controller.arbitrate(0)
        controller.submit(MemRequest("zz", "A", 2, False))
        controller.arbitrate(1)
        waits = {
            s.client: s.wait_cycles
            for s in controller.latency_samples
            if s.port == "A"
        }
        assert waits == {"aa": 0, "zz": 1}

    def test_single_client_served_every_cycle(self):
        controller, __ = make_controller(consumers=1)
        for cycle in range(3):
            controller.submit(MemRequest("solo", "A", 4, True, data=cycle))
            assert controller.arbitrate(cycle)["solo"].granted

    def test_design_time_client_list_honored(self):
        controller, __ = make_controller(consumers=1)
        controller._arb_a.clients.extend(["x", "y"])
        controller.submit(MemRequest("y", "A", 1, False))
        controller.submit(MemRequest("x", "A", 2, False))
        results = controller.arbitrate(0)
        # Grant order follows the configured client list, not name order.
        assert "x" in results and "y" not in results


class TestConfig:
    def test_pseudo_ports_scale(self):
        for n in (2, 4, 8):
            controller, __ = make_controller(consumers=n, dn=n)
            assert controller.config.pseudo_ports == n

    def test_cam_mirrors_deplist(self):
        controller, __ = make_controller(consumers=2)
        assert controller.cam.search(0) == 0
        assert controller.cam.occupancy() == 1
