"""Unit tests for the organization advisor (§4 guidance)."""

from repro.core import DesignConstraints, Organization, recommend


class TestRecommendations:
    def test_default_is_arbitrated(self):
        rec = recommend(DesignConstraints())
        assert rec.organization is Organization.ARBITRATED
        assert rec.reasons

    def test_tight_timing_prefers_event_driven(self):
        rec = recommend(DesignConstraints(timing_slack=0.8))
        assert rec.organization is Organization.EVENT_DRIVEN

    def test_determinism_prefers_event_driven(self):
        rec = recommend(DesignConstraints(need_deterministic_latency=True))
        assert rec.organization is Organization.EVENT_DRIVEN

    def test_scalability_prefers_arbitrated(self):
        rec = recommend(
            DesignConstraints(timing_slack=1.5, expect_new_consumers=True)
        )
        assert rec.organization is Organization.ARBITRATED

    def test_scalability_outweighs_mild_determinism_pressure(self):
        rec = recommend(
            DesignConstraints(
                timing_slack=1.5,
                expect_new_consumers=True,
                reuse_bus_style_clients=True,
            )
        )
        assert rec.organization is Organization.ARBITRATED

    def test_determinism_plus_tight_timing_beats_scalability(self):
        rec = recommend(
            DesignConstraints(
                timing_slack=0.8,
                need_deterministic_latency=True,
                expect_new_consumers=True,
            )
        )
        assert rec.organization is Organization.EVENT_DRIVEN

    def test_explain_mentions_organization(self):
        text = recommend(DesignConstraints(timing_slack=0.5)).explain()
        assert "event_driven" in text

    def test_reasons_cite_paper_sections(self):
        rec = recommend(
            DesignConstraints(
                need_deterministic_latency=True, expect_new_consumers=True
            )
        )
        joined = " ".join(rec.reasons)
        assert "§3.2" in joined
