"""Unit tests for the event-driven statically scheduled organization (§3.2)."""

import pytest

from repro.core import EventDrivenController, MemRequest
from repro.hic.pragmas import ConsumerRef, Dependency
from repro.memory import BlockRam


def make_controller(consumers=2):
    dep = Dependency(
        "d0",
        "prod",
        "x",
        tuple(ConsumerRef(f"c{i}", f"v{i}") for i in range(consumers)),
    )
    return EventDrivenController(BlockRam("bram0"), [dep]), dep


def read_req(client, address=0):
    return MemRequest(client, "B", address, False, dep_id="d0")


def write_req(data, address=0):
    return MemRequest("prod", "B", address, True, data=data, dep_id="d0")


class TestStaticSchedule:
    def test_consumers_block_until_producer_writes(self):
        controller, __ = make_controller()
        controller.submit(read_req("c0"))
        controller.submit(read_req("c1"))
        assert controller.arbitrate(0) == {}

    def test_event_chain_is_compile_time_order(self):
        controller, __ = make_controller()
        grants = []
        for cycle in range(4):
            controller.submit(write_req(9))
            controller.submit(read_req("c0"))
            controller.submit(read_req("c1"))
            results = controller.arbitrate(cycle)
            grants.extend(results)
        assert grants[:3] == ["prod", "c0", "c1"]

    def test_out_of_order_consumer_waits(self):
        # c1 requests alone: it must wait until c0 has taken its slot.
        controller, __ = make_controller()
        controller.submit(write_req(9))
        controller.arbitrate(0)
        controller.submit(read_req("c1"))
        assert controller.arbitrate(1) == {}
        controller.submit(read_req("c0"))
        controller.submit(read_req("c1"))
        assert list(controller.arbitrate(2)) == ["c0"]
        controller.submit(read_req("c1"))
        assert list(controller.arbitrate(3)) == ["c1"]

    def test_deterministic_latency_when_all_wait(self):
        # When every consumer is waiting at the write (the §3.2 use model),
        # the k-th consumer reads exactly k cycles after the write.
        controller, dep = make_controller(consumers=4)
        for name in [f"c{i}" for i in range(4)]:
            controller.submit(read_req(name))
        controller.submit(write_req(3))
        write_cycle = None
        read_cycle = {}
        pending = {f"c{i}" for i in range(4)}
        for cycle in range(8):
            results = controller.arbitrate(cycle)
            for client in results:
                if client == "prod":
                    write_cycle = cycle
                else:
                    read_cycle[client] = cycle
                    pending.discard(client)
            for name in pending:
                controller.submit(read_req(name))
        for i in range(4):
            expected = controller.consumer_latency("d0", f"c{i}")
            assert read_cycle[f"c{i}"] - write_cycle == expected == i + 1

    def test_read_data_matches_write(self):
        controller, __ = make_controller(consumers=1)
        controller.submit(write_req(77))
        controller.arbitrate(0)
        controller.submit(read_req("c0"))
        assert controller.arbitrate(1)["c0"].data == 77

    def test_producer_blocked_until_chain_completes(self):
        controller, __ = make_controller()
        controller.submit(write_req(1))
        controller.arbitrate(0)
        controller.submit(write_req(2))
        assert controller.arbitrate(1) == {}  # slot belongs to c0

    def test_events_recorded(self):
        controller, __ = make_controller()
        controller.submit(write_req(1))
        controller.arbitrate(5)
        assert controller.events == [(5, "d0", "c0")]

    def test_missing_dep_id_rejected(self):
        controller, __ = make_controller()
        controller.submit(MemRequest("c0", "B", 0, False))
        with pytest.raises(ValueError):
            controller.arbitrate(0)


class TestMultipleProducers:
    def test_producers_modulo_scheduled(self):
        d0 = Dependency("d0", "p0", "x", (ConsumerRef("c0", "v0"),))
        d1 = Dependency("d1", "p1", "y", (ConsumerRef("c1", "v1"),))
        controller = EventDrivenController(BlockRam("b"), [d0, d1])
        # p1 ready first, but the schedule starts at p0: p1 waits.
        controller.submit(MemRequest("p1", "B", 1, True, data=5, dep_id="d1"))
        assert controller.arbitrate(0) == {}
        controller.submit(MemRequest("p0", "B", 0, True, data=4, dep_id="d0"))
        controller.submit(MemRequest("p1", "B", 1, True, data=5, dep_id="d1"))
        assert list(controller.arbitrate(1)) == ["p0"]


class TestPortA:
    def test_port_a_unaffected_by_schedule(self):
        controller, __ = make_controller()
        controller.submit(MemRequest("t", "A", 7, True, data=3))
        assert controller.arbitrate(0)["t"].granted
        controller.submit(MemRequest("t", "A", 7, False))
        assert controller.arbitrate(1)["t"].data == 3


class TestConfigAndReset:
    def test_mux_leaves_scale_with_consumers(self):
        for n in (2, 4, 8):
            controller, __ = make_controller(consumers=n)
            assert controller.config.mux_leaves == 1 + n

    def test_select_bits(self):
        controller, __ = make_controller(consumers=8)
        assert controller.config.select_bits == 4  # 9 slots

    def test_reset_restarts_schedule(self):
        controller, __ = make_controller()
        controller.submit(write_req(1))
        controller.arbitrate(0)
        controller.reset()
        assert controller.events == []
        controller.submit(write_req(2))
        assert controller.arbitrate(0)["prod"].granted
