"""Unit tests for the content-addressable memory."""

import pytest

from repro.core import ContentAddressableMemory


class TestCam:
    def test_search_empty_misses(self):
        cam = ContentAddressableMemory(entries=4, key_bits=9)
        assert cam.search(0) is None

    def test_write_then_search(self):
        cam = ContentAddressableMemory(entries=4, key_bits=9)
        cam.write(2, key=17, value=3)
        assert cam.search(17) == 2
        assert cam.value_at(2) == 3

    def test_key_truncated_to_width(self):
        cam = ContentAddressableMemory(entries=2, key_bits=4)
        cam.write(0, key=0x1F, value=1)  # truncates to 0xF
        assert cam.search(0xF) == 0

    def test_first_match_wins(self):
        cam = ContentAddressableMemory(entries=4, key_bits=9)
        cam.write(1, key=5)
        cam.write(3, key=5)
        assert cam.search(5) == 1

    def test_invalidate(self):
        cam = ContentAddressableMemory(entries=2, key_bits=9)
        cam.write(0, key=7)
        cam.invalidate(0)
        assert cam.search(7) is None

    def test_value_at_invalid_row_raises(self):
        cam = ContentAddressableMemory(entries=2, key_bits=9)
        with pytest.raises(ValueError):
            cam.value_at(0)

    def test_row_bounds_checked(self):
        cam = ContentAddressableMemory(entries=2, key_bits=9)
        with pytest.raises(IndexError):
            cam.write(2, key=0)
        with pytest.raises(IndexError):
            cam.invalidate(-1)

    def test_occupancy(self):
        cam = ContentAddressableMemory(entries=4, key_bits=9)
        cam.write(0, key=1)
        cam.write(1, key=2)
        assert cam.occupancy() == 2

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            ContentAddressableMemory(entries=0, key_bits=9)
        with pytest.raises(ValueError):
            ContentAddressableMemory(entries=1, key_bits=0)

    def test_sizing_properties(self):
        cam = ContentAddressableMemory(entries=8, key_bits=9)
        assert cam.comparator_bits == 72
        assert cam.storage_bits == 8 * 10
