"""MemRequest presentation/ordering and ControllerStats.deterministic."""

from repro.core.controller import ControllerStats, MemRequest


class TestMemRequestRepr:
    def test_read_repr_is_stable_and_informative(self):
        request = MemRequest(client="t2", port="B", address=5, write=False)
        assert repr(request) == "MemRequest(t2: read @5 port B)"

    def test_write_repr_marks_the_kind(self):
        request = MemRequest(
            client="t1", port="D", address=0, write=True, data=7
        )
        assert repr(request) == "MemRequest(t1: write @0 port D)"

    def test_dep_id_appears_when_present(self):
        request = MemRequest(
            client="t2", port="B", address=5, write=False, dep_id="mt1"
        )
        assert repr(request) == "MemRequest(t2: read @5 port B dep=mt1)"


class TestMemRequestOrdering:
    def test_sorts_by_client_first(self):
        a = MemRequest(client="t1", port="D", address=9, write=True)
        b = MemRequest(client="t2", port="A", address=0, write=False)
        assert a < b
        assert sorted([b, a]) == [a, b]

    def test_ties_break_on_port_then_address(self):
        low = MemRequest(client="t1", port="A", address=3, write=False)
        mid = MemRequest(client="t1", port="A", address=7, write=False)
        high = MemRequest(client="t1", port="B", address=0, write=False)
        assert sorted([high, mid, low]) == [low, mid, high]

    def test_reads_order_before_writes_at_the_same_address(self):
        read = MemRequest(client="t1", port="A", address=3, write=False)
        write = MemRequest(client="t1", port="A", address=3, write=True)
        assert read < write

    def test_missing_dep_id_orders_before_any_dep_id(self):
        bare = MemRequest(client="t1", port="B", address=3, write=False)
        dep = MemRequest(
            client="t1", port="B", address=3, write=False, dep_id="mt1"
        )
        assert bare < dep

    def test_comparison_with_other_types_is_not_implemented(self):
        request = MemRequest(client="t1", port="A", address=0, write=False)
        assert request.__lt__("not a request") is NotImplemented


class TestControllerStatsDeterministic:
    def test_constant_waits_are_deterministic(self):
        stats = ControllerStats.from_waits([4, 4, 4, 4])
        assert stats.deterministic
        assert (stats.min_wait, stats.max_wait) == (4, 4)
        assert stats.mean_wait == 4.0

    def test_varying_waits_are_not(self):
        stats = ControllerStats.from_waits([2, 4, 3])
        assert not stats.deterministic
        assert (stats.min_wait, stats.max_wait) == (2, 4)

    def test_empty_sample_set_counts_as_deterministic(self):
        stats = ControllerStats.from_waits([])
        assert stats.deterministic
        assert stats.count == 0
        assert stats.mean_wait == 0.0

    def test_single_sample_is_deterministic(self):
        assert ControllerStats.from_waits([17]).deterministic
