"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("reqs", "", ("port",))
        c.inc(port="A")
        c.inc(2, port="A")
        c.inc(port="B")
        assert c.value(port="A") == 3
        assert c.value(port="B") == 1
        assert c.value(port="C") == 0

    def test_rejects_negative(self):
        c = Counter("reqs", "", ())
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_rejects_wrong_labels(self):
        c = Counter("reqs", "", ("port",))
        with pytest.raises(ValueError):
            c.inc(bram="x")


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("pending", "", ())
        g.set(5)
        assert g.value() == 5
        g.inc(-2)
        assert g.value() == 3


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram("waits", "", (), buckets=(1.0, 4.0, 16.0))
        for value in (0, 1, 2, 5, 20):
            h.observe(value)
        assert h.count() == 5
        assert h.sum_of() == 28
        state = h.samples()[0][1]
        # le semantics: 0,1 -> le=1; 2 -> le=4; 5 -> le=16; 20 -> +Inf
        assert state.counts == [2, 1, 1, 1]

    def test_requires_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", "", (), buckets=())

    def test_observe_many(self):
        h = Histogram("h", "", ("who",))
        h.observe_many([1, 2, 3], who="a")
        assert h.count(who="a") == 3
        assert h.count(who="b") == 0


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help", labels=("l",))
        b = reg.counter("x_total", "other help", labels=("l",))
        assert a is b
        assert len(reg) == 1

    def test_conflicting_registration_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("l",))
        with pytest.raises(ValueError):
            reg.gauge("x_total", labels=("l",))
        with pytest.raises(ValueError):
            reg.counter("x_total", labels=("other",))

    def test_render_prometheus_format(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "requests", labels=("port",))
        c.inc(3, port="A")
        g = reg.gauge("level", "fill level")
        g.set(1.5)
        text = reg.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{port="A"} 3' in text
        assert "# TYPE level gauge" in text
        assert "level 1.5" in text
        assert text.endswith("\n")

    def test_render_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait", "waits", labels=("p",), buckets=(1.0, 8.0))
        h.observe_many([0, 5, 100], p="C")
        text = reg.render_prometheus()
        assert 'wait_bucket{p="C",le="1"} 1' in text
        assert 'wait_bucket{p="C",le="8"} 2' in text
        assert 'wait_bucket{p="C",le="+Inf"} 3' in text
        assert 'wait_sum{p="C"} 105' in text
        assert 'wait_count{p="C"} 3' in text

    def test_render_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            c = reg.counter("c_total", labels=("k",))
            # insertion order of label sets differs; render must not
            for key in ("z", "a", "m"):
                c.inc(k=key)
            return reg.render_prometheus()

        assert build() == build()
        assert build().index('k="a"') < build().index('k="z"')

    def test_to_dict_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "h", labels=("l",)).inc(l="x")
        reg.histogram("h_cycles", buckets=(1.0,)).observe(0)
        out = reg.to_dict()
        assert out["c_total"]["type"] == "counter"
        assert out["c_total"]["values"] == [
            {"labels": {"l": "x"}, "value": 1}
        ]
        assert out["h_cycles"]["buckets"] == [1.0]
        assert out["h_cycles"]["values"][0]["count"] == 1

    def test_default_buckets_cover_watchdog_window(self):
        assert DEFAULT_BUCKETS[-1] == 128.0
