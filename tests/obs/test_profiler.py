"""Cycle-attribution profiler: conservation, kernel equivalence,
classification rules, exporters, and the profile CLI."""

import json

import pytest

from repro.core import ArbitratedController, MemRequest, Organization
from repro.flow import SIMULATION_KERNELS, build_simulation, compile_design
from repro.memory import BlockRam, DependencyEntry, DependencyList
from repro.net import (
    BernoulliTraffic,
    demo_table,
    forwarding_functions,
    forwarding_source,
)
from repro.obs import (
    AttributionLedger,
    CycleProfiler,
    breakdown_csv,
    breakdown_dict,
    extract_critical_path,
    folded_stacks,
    merge_profiles,
    render_breakdown,
    render_critical_path,
    render_flame_svg,
)
from repro.obs.attribution import (
    ARBITRATION,
    BLOCKED_READ,
    EXECUTING,
    GUARD_STALL,
    IDLE,
    NO_SITE,
    WAIT_STATES,
)
from repro.obs.exporters import dumps_profile_chrome_trace
from repro.obs.profile_cli import profile_main

from .conftest import run_forwarding


def run_profiled(
    organization=Organization.ARBITRATED,
    cycles=400,
    kernel="reference",
    seed=1,
):
    """Forwarding workload with the profiler attached."""
    design = compile_design(
        forwarding_source(4), organization=organization
    )
    sim = build_simulation(
        design, functions=forwarding_functions(demo_table()), kernel=kernel
    )
    profiler = sim.attach_profiler()
    generator = BernoulliTraffic(rate=0.06, seed=seed)
    sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
    sim.run(cycles)
    return sim, profiler


# -- conservation -----------------------------------------------------------------------


@pytest.mark.parametrize(
    "organization",
    [
        Organization.ARBITRATED,
        Organization.EVENT_DRIVEN,
        Organization.LOCK_BASELINE,
    ],
)
@pytest.mark.parametrize("kernel", SIMULATION_KERNELS)
def test_conservation_per_organization(organization, kernel):
    """Every simulated cycle of every thread is attributed exactly once."""
    sim, profiler = run_profiled(organization, kernel=kernel)
    report = profiler.conservation_report()
    assert report["ok"], report
    totals = profiler.ledger.thread_totals()
    for name, executor in sim.kernel.executors.items():
        assert totals[name] == executor.stats.cycles


def test_state_totals_cover_all_cycles():
    sim, profiler = run_profiled()
    breakdown = breakdown_dict(profiler)
    per_state = sum(breakdown["states"].values())
    per_thread = sum(t["total"] for t in breakdown["threads"].values())
    assert per_state == per_thread
    assert breakdown["cycles"] == 400
    assert set(breakdown["states"]) == set(WAIT_STATES)


# -- wheel == reference -----------------------------------------------------------------


@pytest.mark.parametrize(
    "organization", [Organization.ARBITRATED, Organization.EVENT_DRIVEN]
)
def test_kernel_equivalence_forwarding(organization):
    """Wheel idle-skips batch-book into the same cells and segments."""
    __, ref = run_profiled(organization, kernel="reference")
    __, whl = run_profiled(organization, kernel="wheel")
    ref_json = json.dumps(breakdown_dict(ref), sort_keys=True)
    whl_json = json.dumps(breakdown_dict(whl), sort_keys=True)
    assert ref_json == whl_json
    assert ref.ledger.timelines == pytest.approx(ref.ledger.timelines)
    for thread in ref.ledger.timelines:
        assert ref.ledger.timelines[thread] == whl.ledger.timelines[thread]


def test_kernel_equivalence_figure1(figure1_source):
    """The paper's Figure-1 pattern: byte-for-byte equal breakdowns."""
    docs = []
    for kernel in SIMULATION_KERNELS:
        design = compile_design(
            figure1_source, organization=Organization.ARBITRATED
        )
        sim = build_simulation(design, kernel=kernel)
        profiler = sim.attach_profiler()
        sim.run(300)
        docs.append(
            json.dumps(breakdown_dict(profiler), sort_keys=True, indent=2)
        )
    assert docs[0] == docs[1]


def test_figure1_breakdown_matches_committed_golden(figure1_source, request):
    """The committed golden pins the CLI-default Figure-1 attribution
    (the CI profile-smoke job cmp's the same bytes)."""
    design = compile_design(
        figure1_source, organization=Organization.ARBITRATED
    )
    sim = build_simulation(design, kernel="wheel")
    profiler = sim.attach_profiler()
    sim.run(300)
    fresh = json.dumps(breakdown_dict(profiler), sort_keys=True, indent=2) + "\n"
    golden = request.path.parent / "golden" / "figure1_breakdown.json"
    assert fresh == golden.read_text()


# -- attribution ledger -----------------------------------------------------------------


def test_ledger_merges_contiguous_segments():
    ledger = AttributionLedger()
    ledger.book("t", EXECUTING, NO_SITE, NO_SITE, 0, 3)
    ledger.book("t", EXECUTING, NO_SITE, NO_SITE, 3, 2)
    ledger.book("t", BLOCKED_READ, "b", "C", 5, 4)
    assert ledger.cells[("t", EXECUTING, NO_SITE, NO_SITE)] == 5
    timeline = ledger.timelines["t"]
    assert len(timeline) == 2
    assert (timeline[0].start, timeline[0].length) == (0, 5)
    assert (timeline[1].state, timeline[1].end) == (BLOCKED_READ, 9)


def test_ledger_lazy_materialization_is_incremental():
    """Reading views mid-stream then booking more keeps totals exact."""
    ledger = AttributionLedger()
    ledger.book("t", EXECUTING, NO_SITE, NO_SITE, 0, 2)
    assert ledger.cells[("t", EXECUTING, NO_SITE, NO_SITE)] == 2
    ledger.book("t", EXECUTING, NO_SITE, NO_SITE, 2, 1)
    ledger.book("u", IDLE, NO_SITE, NO_SITE, 0, 3)
    assert ledger.cells[("t", EXECUTING, NO_SITE, NO_SITE)] == 3
    assert len(ledger.timelines["t"]) == 1
    assert ledger.thread_totals() == {"t": 3, "u": 3}


def test_ledger_merge_is_commutative():
    def build(order):
        ledger = AttributionLedger()
        for args in order:
            ledger.book(*args)
        return ledger

    a = [("t", EXECUTING, NO_SITE, NO_SITE, 0, 2)]
    b = [("t", ARBITRATION, "b", "C", 2, 3), ("u", IDLE, NO_SITE, NO_SITE, 0, 1)]
    left = build(a)
    left.merge(build(b))
    right = build(b)
    right.merge(build(a))
    assert left.cells == right.cells


# -- classification rules ---------------------------------------------------------------


def make_arbitrated():
    names = ["c0", "c1"]
    deplist = DependencyList(
        bram="b",
        entries=[DependencyEntry("d", 2, 0, "p", tuple(names))],
    )
    return ArbitratedController(BlockRam("b"), deplist, names, ["p"])


def test_classify_wait_arbitrated_rules():
    controller = make_arbitrated()
    read = MemRequest(client="c0", port="C", address=0, write=False, dep_id="d")
    write = MemRequest(
        client="p", port="D", address=0, write=True, data=1, dep_id="d"
    )
    # Unarmed guard: the consumer read is held by the dependency guard.
    assert controller.classify_wait(read) == (BLOCKED_READ, "b", "C")
    # Arm it: a producer write is now a guard stall until the round drains.
    controller.deplist.note_producer_write(0, "p", "d")
    assert controller.classify_wait(write) == (GUARD_STALL, "b", "D")
    # The armed consumer read is grantable: any wait is arbitration loss.
    assert controller.classify_wait(read) == (ARBITRATION, "b", "C")


def test_classify_epoch_bumps_on_guard_mutation():
    controller = make_arbitrated()
    read = MemRequest(client="c0", port="C", address=0, write=False, dep_id="d")
    before = controller.classify_epoch
    controller.submit(
        MemRequest(
            client="p", port="D", address=0, write=True, data=7, dep_id="d"
        )
    )
    controller.arbitrate(0)
    assert controller.classify_epoch != before
    # The classification changed with the epoch: memoized answers from
    # before the arm must not be replayed.
    assert controller.classify_wait(read) == (ARBITRATION, "b", "C")


def test_blocked_view_identity_is_stable_while_membership_holds():
    """The controller keeps the same blocked_by_client object across
    cycles with unchanged blocked membership — the profiler's steady
    signal — and replaces it when membership changes."""
    controller = make_arbitrated()
    read = MemRequest(client="c0", port="C", address=0, write=False, dep_id="d")
    controller.submit(read)
    controller.arbitrate(0)
    view = controller.blocked_by_client
    assert view == {"c0": read}
    controller.submit(read)
    controller.arbitrate(1)
    assert controller.blocked_by_client is view
    # Membership change: a second blocked client forces a new view.
    other = MemRequest(
        client="c1", port="C", address=0, write=False, dep_id="d"
    )
    controller.submit(read)
    controller.submit(other)
    controller.arbitrate(2)
    assert controller.blocked_by_client is not view
    assert set(controller.blocked_by_client) == {"c0", "c1"}


# -- reports and exporters --------------------------------------------------------------


def test_render_breakdown_mentions_conservation():
    __, profiler = run_profiled()
    text = render_breakdown(profiler, top=3)
    assert "conservation: ok" in text
    assert "cycle attribution over 400 cycles" in text


def test_breakdown_csv_roundtrip():
    __, profiler = run_profiled()
    lines = breakdown_csv(profiler).strip().splitlines()
    assert lines[0] == "thread,state,site,port,cycles"
    total = sum(int(line.rsplit(",", 1)[1]) for line in lines[1:])
    assert total == sum(profiler.ledger.thread_totals().values())


def test_flame_exports_deterministic():
    __, a = run_profiled()
    __, b = run_profiled()
    assert folded_stacks(a) == folded_stacks(b)
    assert render_flame_svg(a) == render_flame_svg(b)
    assert folded_stacks(a).strip()
    assert render_flame_svg(a).startswith("<svg ")


def test_profile_chrome_trace_valid_and_deterministic():
    __, a = run_profiled()
    __, b = run_profiled()
    assert dumps_profile_chrome_trace(a) == dumps_profile_chrome_trace(b)
    document = json.loads(dumps_profile_chrome_trace(a))
    slices = [e for e in document["traceEvents"] if e["ph"] == "X"]
    assert slices and all(e["dur"] > 0 for e in slices)


def test_merge_profiles_order_independent():
    __, a = run_profiled(seed=1)
    __, b = run_profiled(seed=2)
    da, db = breakdown_dict(a), breakdown_dict(b)
    forward = merge_profiles([da, db])
    backward = merge_profiles([db, da])
    assert forward == backward
    assert forward["cycles"] == da["cycles"] + db["cycles"]
    assert forward["runs"] == 2


def test_critical_path_deterministic_and_bounded():
    sim, __ = run_profiled()
    spans = sim.telemetry.spans.spans
    report = extract_critical_path(spans, makespan=400)
    again = extract_critical_path(spans, makespan=400)
    assert report == again
    assert 0 <= report["critical_cycles"]
    assert report["coverage"] <= 1.0 or report["makespan"] == 0
    text = render_critical_path(report)
    assert text.startswith("critical path:")


def test_critical_path_empty_spans():
    report = extract_critical_path([], makespan=100)
    assert report["critical_cycles"] == 0
    assert report["path"] == []


# -- the profile CLI --------------------------------------------------------------------


@pytest.fixture()
def figure1_file(tmp_path, figure1_source):
    path = tmp_path / "figure1.hic"
    path.write_text(figure1_source)
    return str(path)


def test_profile_cli_writes_deterministic_artifacts(
    figure1_file, tmp_path, capsys
):
    out = {
        name: str(tmp_path / name)
        for name in (
            "a.json",
            "a.csv",
            "a.folded",
            "a.svg",
            "a.trace.json",
            "b.json",
        )
    }
    code = profile_main(
        [
            figure1_file,
            "--critical-path",
            "--breakdown-json",
            out["a.json"],
            "--breakdown-csv",
            out["a.csv"],
            "--flame",
            out["a.folded"],
            "--chrome-trace",
            out["a.trace.json"],
        ]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "conservation: ok" in text
    assert "critical path:" in text
    code = profile_main(
        [figure1_file, "--kernel", "reference", "--breakdown-json", out["b.json"]]
    )
    assert code == 0
    with open(out["a.json"]) as left, open(out["b.json"]) as right:
        assert left.read() == right.read()
    code = profile_main([figure1_file, "--flame", out["a.svg"]])
    assert code == 0
    with open(out["a.svg"]) as handle:
        assert handle.read().startswith("<svg ")
    with open(out["a.folded"]) as handle:
        assert ";" in handle.read()


def test_profile_cli_rejects_bad_kernel(figure1_file, capsys):
    with pytest.raises(SystemExit):
        profile_main([figure1_file, "--kernel", "warp"])
    assert "invalid choice" in capsys.readouterr().err


def test_profile_cli_missing_file(capsys):
    assert profile_main(["/nonexistent/x.hic"]) == 2
    assert "cannot read" in capsys.readouterr().err


# -- riding the telemetry seam ----------------------------------------------------------


def test_attach_telemetry_profile_flag():
    """Telemetry(profile=True) exposes the bound profiler; the traced
    path without the flag keeps profiler None."""
    __, telemetry = run_forwarding(profile=True, cycles=120)
    assert telemetry.profiler is not None
    assert telemetry.profiler.cycles_observed == 120
    __, plain = run_forwarding(cycles=60)
    assert plain.profiler is None
