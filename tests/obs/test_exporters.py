"""Tests for the trace/metrics/summary exporters and their determinism."""

import csv
import json

import pytest

from repro.core import Organization
from repro.obs.exporters import (
    chrome_trace,
    dumps_chrome_trace,
    dumps_summary,
    prometheus_text,
    summary_dict,
    validate_chrome_trace,
    write_bench_json,
    write_chrome_trace,
    write_prometheus,
    write_summary_csv,
    write_summary_json,
)
from tests.obs.conftest import run_forwarding


class TestChromeTrace:
    def test_document_validates(self, arbitrated_run):
        __, telemetry = arbitrated_run
        document = chrome_trace(telemetry)
        validate_chrome_trace(document)  # must not raise
        assert document["otherData"]["cycles"] == 400

    def test_span_and_read_events_present(self, arbitrated_run):
        __, telemetry = arbitrated_run
        events = chrome_trace(telemetry)["traceEvents"]
        spans = [e for e in events if e.get("cat") == "dependency"]
        reads = [e for e in events if e.get("cat") == "consumer-read"]
        assert spans and reads
        for event in spans + reads:
            assert event["ph"] == "X" and event["dur"] >= 0
        metadata = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert "threads" in names and "memory controllers" in names

    def test_instant_events_scoped(self, arbitrated_run):
        __, telemetry = arbitrated_run
        events = chrome_trace(telemetry)["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert instants
        assert all(e["s"] == "t" for e in instants)

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "?", "pid": 0,
                                  "tid": 0, "ts": 0}]}
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "pid": 0,
                                  "tid": 0, "ts": 0}]}  # missing dur
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "i", "s": "?",
                                  "pid": 0, "tid": 0, "ts": 0}]}
            )

    def test_json_round_trip(self, arbitrated_run, tmp_path):
        __, telemetry = arbitrated_run
        path = tmp_path / "trace.json"
        write_chrome_trace(telemetry, str(path))
        document = json.loads(path.read_text())
        validate_chrome_trace(document)


class TestDeterminism:
    def test_same_seed_byte_identical_exports(self):
        def exports():
            __, telemetry = run_forwarding(cycles=300)
            return (
                dumps_chrome_trace(telemetry),
                prometheus_text(telemetry),
                dumps_summary(telemetry),
            )

        assert exports() == exports()

    def test_different_seed_differs(self):
        __, a = run_forwarding(cycles=300, seed=1)
        __, b = run_forwarding(cycles=300, seed=2)
        assert dumps_chrome_trace(a) != dumps_chrome_trace(b)


class TestPrometheus:
    def test_text_exposition_shape(self, arbitrated_run):
        __, telemetry = arbitrated_run
        text = prometheus_text(telemetry)
        assert "# TYPE sim_requests_granted_total counter" in text
        assert "# TYPE sim_dependency_wait_cycles histogram" in text
        assert "sim_dependency_wait_cycles_bucket" in text
        assert 'le="+Inf"' in text
        assert "sim_cycles 400" in text

    def test_write(self, arbitrated_run, tmp_path):
        __, telemetry = arbitrated_run
        path = tmp_path / "metrics.prom"
        write_prometheus(telemetry, str(path))
        assert path.read_text() == prometheus_text(telemetry)


class TestSummary:
    def test_schema_and_sections(self, arbitrated_run):
        sim, telemetry = arbitrated_run
        summary = summary_dict(telemetry)
        assert summary["schema"] == "repro.obs.summary/1"
        assert summary["cycles"] == 400
        assert summary["spans"]["complete"] <= summary["spans"]["total"]
        assert set(summary["threads"]) == set(sim.executors)
        assert set(summary["controllers"]) == set(sim.controllers)
        assert summary["dependencies"]
        for stats in summary["dependencies"].values():
            assert {"spans", "reads", "observed"} <= set(stats)
        assert "sim_cycles" in summary["metrics"]

    def test_summary_json_is_valid(self, arbitrated_run, tmp_path):
        __, telemetry = arbitrated_run
        path = tmp_path / "summary.json"
        write_summary_json(telemetry, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "repro.obs.summary/1"

    def test_summary_csv_rows(self, arbitrated_run, tmp_path):
        __, telemetry = arbitrated_run
        path = tmp_path / "metrics.csv"
        write_summary_csv(telemetry, str(path))
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["metric", "type", "labels", "value"]
        assert len(rows) > 10
        names = {row[0] for row in rows[1:]}
        assert "sim_requests_granted_total" in names
        assert "sim_dependency_wait_cycles_sum" in names


class TestOtherOrganizations:
    def test_event_driven_exports(self, event_driven_run):
        __, telemetry = event_driven_run
        validate_chrome_trace(chrome_trace(telemetry))
        assert "sim_chain_events_total" in prometheus_text(telemetry)

    def test_lock_baseline_exports(self, lock_baseline_run):
        __, telemetry = lock_baseline_run
        validate_chrome_trace(chrome_trace(telemetry))
        assert summary_dict(telemetry)["spans"]["complete"] > 0


class TestBenchJson:
    def test_write_bench_json(self, tmp_path):
        path = tmp_path / "BENCH_sim.json"
        write_bench_json(str(path), {"b": 2, "a": 1})
        text = path.read_text()
        assert json.loads(text) == {"a": 1, "b": 2}
        assert text.index('"a"') < text.index('"b"')
        assert text.endswith("\n")
