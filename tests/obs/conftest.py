"""Shared fixtures for the telemetry tests: seeded simulation runs."""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import (
    BernoulliTraffic,
    demo_table,
    forwarding_functions,
    forwarding_source,
)


def run_forwarding(
    organization=Organization.ARBITRATED,
    cycles=400,
    consumers=4,
    seed=1,
    rate=0.06,
    **telemetry_kwargs,
):
    """Compile + simulate the forwarding design with telemetry attached;
    returns (sim, telemetry)."""
    design = compile_design(
        forwarding_source(consumers), organization=organization
    )
    sim = build_simulation(design, functions=forwarding_functions(demo_table()))
    telemetry = sim.attach_telemetry(**telemetry_kwargs)
    generator = BernoulliTraffic(rate=rate, seed=seed)
    sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
    sim.run(cycles)
    return sim, telemetry


@pytest.fixture(scope="module")
def arbitrated_run():
    return run_forwarding(Organization.ARBITRATED)


@pytest.fixture(scope="module")
def event_driven_run():
    return run_forwarding(Organization.EVENT_DRIVEN)


@pytest.fixture(scope="module")
def lock_baseline_run():
    return run_forwarding(Organization.LOCK_BASELINE)
