"""Tests for the Telemetry tracer: wiring, events, spans, metrics."""

import pytest

from repro.core import Organization
from repro.faults.models import ProducerStall
from repro.flow import build_simulation, compile_design
from repro.obs import EventKind, Telemetry, attach_telemetry
from tests.conftest import FIGURE1_SOURCE
from tests.obs.conftest import run_forwarding


class TestWiring:
    def test_attach_sets_all_seams(self):
        design = compile_design(FIGURE1_SOURCE)
        sim = build_simulation(design)
        telemetry = sim.attach_telemetry()
        assert sim.telemetry is telemetry
        assert sim.kernel.observer is telemetry
        assert sim.kernel.context["telemetry"] is telemetry
        assert all(
            c.observer is telemetry for c in sim.controllers.values()
        )

    def test_disabled_path_has_no_observer(self):
        design = compile_design(FIGURE1_SOURCE)
        sim = build_simulation(design)
        assert sim.telemetry is None
        assert sim.kernel.observer is None
        assert all(c.observer is None for c in sim.controllers.values())
        sim.run(50)  # runs clean with every seam disabled

    def test_attach_telemetry_helper(self):
        design = compile_design(FIGURE1_SOURCE)
        sim = build_simulation(design)
        telemetry = attach_telemetry(sim, trace_level="full")
        assert sim.telemetry is telemetry
        assert telemetry.trace_level == "full"

    def test_invalid_trace_level_rejected(self):
        with pytest.raises(ValueError):
            Telemetry(trace_level="everything")

    def test_watchdog_wired_either_order(self):
        for telemetry_first in (True, False):
            design = compile_design(FIGURE1_SOURCE)
            sim = build_simulation(design)
            if telemetry_first:
                telemetry = sim.attach_telemetry()
                watchdog = sim.attach_watchdog(policy="warn-continue")
            else:
                watchdog = sim.attach_watchdog(policy="warn-continue")
                telemetry = sim.attach_telemetry()
            assert watchdog.observer is telemetry


class TestEventsAndSpans:
    def test_cycles_observed(self, arbitrated_run):
        __, telemetry = arbitrated_run
        assert telemetry.cycles_observed == 400

    def test_arbitrated_spans_complete(self, arbitrated_run):
        __, telemetry = arbitrated_run
        spans = telemetry.spans.complete_spans()
        assert spans
        for span in spans:
            assert span.reads, "complete span with no consumer reads"
            assert span.complete_cycle >= span.write_cycle
            # deplist guard arms in the same arbitration cycle as the write
            assert span.armed_cycle == span.write_cycle

    def test_event_driven_spans_deterministic(self, event_driven_run):
        __, telemetry = event_driven_run
        stats = telemetry.spans.wait_statistics()
        assert stats and all(s["observed"] for s in stats.values())
        # §3.2: every span of a dependency replays the same post-write
        # latency sequence — the chained schedule is compile-time fixed.
        by_dep = {}
        for span in telemetry.spans.complete_spans():
            by_dep.setdefault((span.bram, span.dep_id), set()).add(
                tuple(span.post_write_latencies())
            )
        assert by_dep
        for sequences in by_dep.values():
            assert len(sequences) == 1

    def test_lock_baseline_spans(self, lock_baseline_run):
        __, telemetry = lock_baseline_run
        assert telemetry.spans.complete_spans()
        assert telemetry.events_of_kind(EventKind.DEP_ARMED)
        assert telemetry.events_of_kind(EventKind.DEP_DECREMENT)

    def test_dep_lifecycle_event_order(self, arbitrated_run):
        __, telemetry = arbitrated_run
        kinds = [
            e.kind
            for e in telemetry.events
            if e.kind
            in (EventKind.DEP_ARMED, EventKind.DEP_COMPLETE)
        ]
        assert kinds[0] == EventKind.DEP_ARMED
        assert EventKind.DEP_COMPLETE in kinds

    def test_round_complete_events_full_level(self):
        __, telemetry = run_forwarding(cycles=400, trace_level="full")
        rounds = telemetry.events_of_kind(EventKind.ROUND_COMPLETE)
        assert rounds
        assert all(e.value >= 1 for e in rounds)

    def test_round_complete_not_traced_at_deps_level(self, arbitrated_run):
        __, telemetry = arbitrated_run
        assert not telemetry.events_of_kind(EventKind.ROUND_COMPLETE)

    def test_full_level_records_submits(self):
        __, telemetry = run_forwarding(cycles=100, trace_level="full")
        assert telemetry.events_of_kind(EventKind.SUBMIT)
        __, deps_only = run_forwarding(cycles=100)
        assert not deps_only.events_of_kind(EventKind.SUBMIT)
        assert len(deps_only.events) < len(telemetry.events)

    def test_describe_mentions_spans(self, arbitrated_run):
        __, telemetry = arbitrated_run
        text = telemetry.describe()
        assert "cycles" in text and "spans" in text


class TestMetrics:
    def test_finalize_is_idempotent(self, arbitrated_run):
        __, telemetry = arbitrated_run
        first = telemetry.finalize().render_prometheus()
        second = telemetry.finalize().render_prometheus()
        assert first == second

    def test_core_metrics_present(self, arbitrated_run):
        __, telemetry = arbitrated_run
        registry = telemetry.finalize()
        granted = registry.get("sim_requests_granted_total")
        assert granted is not None and granted.samples()
        waits = registry.get("sim_dependency_wait_cycles")
        assert waits is not None and waits.samples()
        cycles = registry.get("sim_cycles")
        assert cycles.value() == 400
        spans = registry.get("sim_dependency_spans_total")
        assert any(
            key[-1] == "complete" for key, __ in spans.samples()
        )

    def test_thread_metrics_match_executor_stats(self, arbitrated_run):
        sim, telemetry = arbitrated_run
        registry = telemetry.finalize()
        rounds = registry.get("sim_thread_rounds_total")
        for name, executor in sim.executors.items():
            if executor.stats.rounds_completed:
                assert (
                    rounds.value(thread=name)
                    == executor.stats.rounds_completed
                )

    def test_tx_message_counts(self, arbitrated_run):
        sim, telemetry = arbitrated_run
        registry = telemetry.finalize()
        messages = registry.get("sim_tx_messages_total")
        total = sum(value for __, value in messages.samples())
        assert total == sum(tx.count for tx in sim.tx.values())

    def test_chain_events_only_event_driven(
        self, arbitrated_run, event_driven_run
    ):
        __, arb = arbitrated_run
        __, evd = event_driven_run
        assert not arb.finalize().get("sim_chain_events_total").samples()
        assert evd.finalize().get("sim_chain_events_total").samples()
        assert evd.events_of_kind(EventKind.CHAIN_EVENT)


class TestWatchdogCapture:
    def test_watchdog_events_and_recoveries(self):
        from repro.net import (
            BernoulliTraffic,
            demo_table,
            forwarding_functions,
            forwarding_source,
        )

        design = compile_design(forwarding_source(4))
        sim = build_simulation(
            design, functions=forwarding_functions(demo_table())
        )
        telemetry = sim.attach_telemetry()
        watchdog = sim.attach_watchdog(
            policy="break-dependency", read_timeout=32
        )
        sim.inject_faults([ProducerStall(at_cycle=10, client="classify")])
        generator = BernoulliTraffic(rate=0.2, seed=3)
        sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
        sim.run(400)

        assert watchdog.tripped
        events = telemetry.events_of_kind(EventKind.WATCHDOG)
        assert len(events) == len(watchdog.events)
        recoveries = telemetry.events_of_kind(EventKind.RECOVERY)
        assert len(recoveries) == len(watchdog.degradations)

        registry = telemetry.finalize()
        fired = registry.get("sim_watchdog_events_total")
        assert sum(v for __, v in fired.samples()) == len(watchdog.events)
        recovered = registry.get("sim_watchdog_recoveries_total")
        assert recovered.value() == len(watchdog.degradations)
