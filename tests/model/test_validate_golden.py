"""Honesty test for the committed model-validation golden.

Same pattern as the PR-5/6 goldens (tests/obs/golden): regenerate the
full Figure-1 validation grid — three organizations x {1, 4} banks x
sparse/dense traffic, seeded Bernoulli arrivals, wheel kernel — and
require the rendered JSON to match the committed bytes.  The CI
predict-smoke job runs the same grid via ``python -m repro predict
--validate``, so a drift in either the model or the simulator fails
both gates for the same reason.
"""

import json

from repro.model import ERROR_BOUND, validate


def test_figure1_validation_matches_committed_golden(request):
    report = validate()
    fresh = report.to_json()
    golden = request.path.parent / "golden" / "figure1_validation.json"
    assert fresh == golden.read_text()
    # The golden must itself be a passing report under the stated bound:
    # committing a failing validation would defeat the gate.
    document = json.loads(fresh)
    assert document["within_bound"] is True
    assert document["bound"] == ERROR_BOUND
    assert document["worst_enforced_error"] <= ERROR_BOUND
    assert len(document["configs"]) == 12  # 3 orgs x 2 banks x 2 rates
