"""Unit tests for the analytical model: extraction, closed forms,
prediction invariants, and the sweep/prune machinery.

These tests pin the numbers the derivation in docs/performance_model.md
claims — loop lengths read off the Figure-1 FSMs, the saturated round
period per organization, and conservation of the wait-state fractions —
without running any simulation (the validation grid lives in
test_validate_golden.py).
"""

import json

import pytest

from repro.core import ParameterError
from repro.core.advisor import Organization
from repro.flow import compile_design
from repro.model import (
    DEFAULT_MARGIN,
    ModelParameters,
    area_slices,
    extract_parameters,
    pareto_frontier,
    predict,
    prune,
    run_sweep,
    saturated_round,
    serialization_bound,
)
from repro.net import forwarding_source

FIGURE1 = dict(
    consumers=2, producer_loop=15, consumer_loop=5, producer_accesses=7
)


def figure1_params(organization, **overrides):
    return ModelParameters(organization=organization, **FIGURE1).with_config(
        **overrides
    )


# -- parameter extraction -------------------------------------------------


def test_extraction_reads_figure1_loops():
    """The FSM walk recovers the Figure-1 loop shape: the producer's
    longest guarded-write cycle is 15 states with 7 memory accesses, the
    consumer's shortest guarded-read cycle is 5 states."""
    design = compile_design(
        forwarding_source(2), organization=Organization.ARBITRATED
    )
    params = extract_parameters(design)
    assert params.producer_loop == 15
    assert params.consumer_loop == 5
    assert params.producer_accesses == 7
    assert params.consumers == 2
    assert params.banks == 0


def test_extraction_reads_fabric_config():
    design = compile_design(
        forwarding_source(2),
        organization=Organization.ARBITRATED,
        num_banks=4,
        link_latency=3,
        batch_size=2,
    )
    params = extract_parameters(design, traffic_rate=0.5)
    assert params.banks == 4
    assert params.link_latency == 3
    assert params.batch_size == 2
    assert params.traffic_rate == 0.5
    assert params.fabric


def test_model_parameters_from_compiled_design_method():
    design = compile_design(
        forwarding_source(3), organization=Organization.EVENT_DRIVEN
    )
    params = design.model_parameters(traffic_rate=0.25)
    assert params.organization is Organization.EVENT_DRIVEN
    assert params.consumers == 3
    assert params.traffic_rate == 0.25


@pytest.mark.parametrize(
    "field, value",
    [
        ("consumers", 0),
        ("producer_loop", 0),
        ("consumer_loop", -1),
        ("producer_accesses", 0),
        ("banks", -1),
        ("link_latency", -1),
        ("batch_size", 0),
        ("offchip_latency", -1),
        ("deplist_entries", 0),
        ("traffic_rate", 1.5),
        ("traffic_rate", -0.1),
    ],
)
def test_validate_rejects_out_of_range(field, value):
    # with_config() validates eagerly, so the bad override itself raises.
    with pytest.raises(ParameterError) as excinfo:
        figure1_params(Organization.ARBITRATED, **{field: value})
    assert excinfo.value.parameter == field
    assert "parameter-error" in excinfo.value.describe()


# -- saturated round closed forms -----------------------------------------


@pytest.mark.parametrize(
    "organization, banks, period",
    [
        (Organization.ARBITRATED, 0, 15.0),
        (Organization.ARBITRATED, 1, 22.0),
        (Organization.ARBITRATED, 4, 22.0),
        (Organization.EVENT_DRIVEN, 0, 15.0),
        (Organization.EVENT_DRIVEN, 1, 22.0),
        (Organization.LOCK_BASELINE, 0, 25.0),
        (Organization.LOCK_BASELINE, 1, 38.0),
    ],
)
def test_figure1_round_periods(organization, banks, period):
    """The Figure-1 periods the validation grid is calibrated on: the
    producer's 15-state loop bounds the on-chip round; the crossbar adds
    one link each way per access on the fabric; the lock baseline pays
    the acquire/poll/release protocol on top."""
    model = saturated_round(figure1_params(organization, banks=banks))
    assert model.period == period
    assert model.consumer_wait == period - FIGURE1["consumer_loop"] + 1


def test_offchip_latency_stretches_period():
    base = figure1_params(Organization.ARBITRATED)
    slow = base.with_config(offchip_accesses=2, offchip_latency=10)
    assert saturated_round(slow).period > saturated_round(base).period


def test_serialization_bound_scales_with_banks():
    one = figure1_params(Organization.ARBITRATED, banks=1)
    four = figure1_params(Organization.ARBITRATED, banks=4)
    assert serialization_bound(four) <= serialization_bound(one)


# -- prediction invariants ------------------------------------------------


@pytest.mark.parametrize("organization", list(Organization))
def test_fractions_conserve_to_one(organization):
    """The per-thread booking recipe hands out exactly one round of
    cycles per thread, so the averaged fractions sum to 1."""
    for rate in (0.02, 0.5, 1.0):
        prediction = predict(
            figure1_params(organization, banks=1, traffic_rate=rate)
        )
        assert sum(prediction.fractions.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in prediction.fractions.values())


def test_sparse_wait_follows_universal_identity():
    """Below saturation the mean guarded-read wait is 1/X - (C_loop - 1)
    with X the delivered throughput — the identity the sparse half of
    the validation grid rests on."""
    params = figure1_params(
        Organization.ARBITRATED, banks=1, traffic_rate=0.02
    )
    prediction = predict(params)
    assert prediction.throughput == pytest.approx(0.02)
    assert prediction.consumer_wait == pytest.approx(
        1.0 / 0.02 - (params.consumer_loop - 1)
    )


def test_e2e_latency_none_at_saturation():
    saturated = predict(
        figure1_params(Organization.ARBITRATED, traffic_rate=1.0)
    )
    sparse = predict(
        figure1_params(Organization.ARBITRATED, traffic_rate=0.02)
    )
    assert saturated.e2e_latency is None
    assert sparse.e2e_latency is not None and sparse.e2e_latency > 0


def test_summary_json_is_byte_deterministic():
    params = figure1_params(
        Organization.EVENT_DRIVEN, banks=2, traffic_rate=0.9
    )
    first = predict(params).summary_json()
    second = predict(params).summary_json()
    assert first == second
    document = json.loads(first)
    assert document["schema"] == "repro.model.prediction/1"
    assert first == json.dumps(document, indent=2, sort_keys=True) + "\n"


# -- sweep / pareto / prune -----------------------------------------------


def sweep_figure1(**kwargs):
    return run_sweep(figure1_params(Organization.ARBITRATED), **kwargs)


def test_sweep_enumerates_deterministically():
    first = sweep_figure1(with_area=False)
    second = sweep_figure1(with_area=False)
    assert [p.row() for p in first.points] == [
        p.row() for p in second.points
    ]
    assert first.frontier == second.frontier
    assert first.pruned == second.pruned


def test_frontier_is_subset_of_prune_set():
    result = sweep_figure1(with_area=False)
    assert set(result.frontier) <= set(result.pruned)
    assert result.pruned == sorted(result.pruned)


def test_prune_margin_zero_equals_frontier():
    points = sweep_figure1(with_area=False).points
    assert prune(points, margin=0.0) == pareto_frontier(points)


def test_prune_set_grows_with_margin():
    points = sweep_figure1(with_area=False).points
    tight = set(prune(points, margin=0.05))
    loose = set(prune(points, margin=DEFAULT_MARGIN))
    assert tight <= loose


def test_area_bridge_matches_fpga_model_and_memoizes():
    params = figure1_params(Organization.ARBITRATED, banks=2)
    first = area_slices(params)
    second = area_slices(params)
    assert first == second
    assert first > 0
    # Fabric deployments pay for the crossbar: more banks, more slices.
    assert area_slices(params.with_config(banks=4)) > first
