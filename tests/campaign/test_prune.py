"""Predict-pruned campaigns: model scoring decides what simulates.

The tasks here are cheap arithmetic, not simulations — the unit under
test is the pruning orchestration (which specs run, which are recorded
as skipped, and the report surface), not the engine or the model.
"""

from repro.campaign import (
    EngineConfig,
    PruneReport,
    RunSpec,
    predict_pruned_matrix,
)
from repro.campaign.tasks import square_task


def cost_objectives(payload: dict) -> tuple:
    """Minimize (value, 10 - value): only the extremes are Pareto."""
    value = payload["value"]
    return (float(value), float(10 - value), float(payload.get("area", 1)))


def value_specs(count: int) -> list:
    return [
        RunSpec(index=index, payload={"value": index})
        for index in range(count)
    ]


class TestPredictPrunedMatrix:
    def test_only_promising_points_simulate(self):
        specs = value_specs(6)
        report = predict_pruned_matrix(
            square_task, specs, cost_objectives, margin=0.0
        )
        # With margin 0, exactly the Pareto frontier of the objective
        # tuples survives; midpoints are dominated on neither axis, so
        # everything on the (value, 10-value) trade-off line is kept —
        # use a dominated payload to see real skipping instead.
        assert report.total == 6
        assert sorted(report.kept) + sorted(report.skipped) == sorted(
            report.kept + report.skipped
        )
        assert set(report.kept) | set(report.skipped) == set(range(6))

    def test_dominated_points_are_skipped_not_run(self):
        # index 0 dominates index 1 on every axis.
        specs = [
            RunSpec(index=0, payload={"value": 1, "area": 1}),
            RunSpec(index=1, payload={"value": 5, "area": 9}),
        ]

        def objectives(payload: dict) -> tuple:
            return (float(payload["value"]), float(payload["area"]))

        report = predict_pruned_matrix(
            square_task, specs, objectives, margin=0.0
        )
        assert report.kept == [0]
        assert report.skipped == [1]
        # The engine only ran the kept spec.
        assert [r.index for r in report.engine.results] == [0]
        assert report.engine.results[0].value["square"] == 1
        assert report.simulated_fraction == 0.5

    def test_margin_rescues_near_frontier_points(self):
        specs = [
            RunSpec(index=0, payload={"value": 10, "area": 10}),
            # 5% worse on both axes: pruned at margin 0, kept at 0.15.
            RunSpec(index=1, payload={"value": 10.5, "area": 10.5}),
        ]

        def objectives(payload: dict) -> tuple:
            return (float(payload["value"]), float(payload["area"]))

        tight = predict_pruned_matrix(
            square_task, specs, objectives, margin=0.0
        )
        assert tight.kept == [0]
        wide = predict_pruned_matrix(
            square_task, specs, objectives, margin=0.15
        )
        assert wide.kept == [0, 1]

    def test_objectives_recorded_per_spec(self):
        specs = value_specs(3)
        report = predict_pruned_matrix(
            square_task, specs, cost_objectives
        )
        assert set(report.objectives) == {0, 1, 2}
        assert report.objectives[2] == (2.0, 8.0, 1.0)

    def test_deterministic_across_workers(self):
        specs = value_specs(5)
        serial = predict_pruned_matrix(
            square_task, specs, cost_objectives, EngineConfig(workers=1)
        )
        parallel = predict_pruned_matrix(
            square_task, specs, cost_objectives, EngineConfig(workers=2)
        )
        assert serial.kept == parallel.kept
        assert serial.skipped == parallel.skipped
        assert [
            (r.index, r.value) for r in serial.engine.results
        ] == [(r.index, r.value) for r in parallel.engine.results]

    def test_to_dict_schema(self):
        report = predict_pruned_matrix(
            square_task, value_specs(2), cost_objectives
        )
        document = report.to_dict()
        assert document["schema"] == "repro.campaign.prune/1"
        assert document["total"] == 2
        assert document["kept"] == report.kept
        assert document["skipped"] == report.skipped
        assert (
            document["simulated_fraction"]
            == round(report.simulated_fraction, 6)
        )

    def test_empty_matrix(self):
        report = predict_pruned_matrix(square_task, [], cost_objectives)
        assert isinstance(report, PruneReport)
        assert report.total == 0
        assert report.simulated_fraction == 0.0
        assert report.engine.results == []
