"""Journal-format tests: header binding, torn writes, fingerprints."""

import json

import pytest

from repro.campaign import (
    JOURNAL_SCHEMA,
    JournalError,
    JournalWriter,
    read_journal,
)


def test_writer_creates_header_and_appends(tmp_path):
    path = str(tmp_path / "run.jsonl")
    with JournalWriter(path, "fp-1", 3) as journal:
        journal.append({"index": 0, "outcome": "ok", "attempts": 1})
        journal.append({"index": 1, "outcome": "ok", "attempts": 1})
    header, records = read_journal(path)
    assert header["schema"] == JOURNAL_SCHEMA
    assert header["fingerprint"] == "fp-1"
    assert header["total_runs"] == 3
    assert sorted(records) == [0, 1]


def test_append_reopen_validates_fingerprint(tmp_path):
    path = str(tmp_path / "run.jsonl")
    JournalWriter(path, "fp-1", 2).close()
    with pytest.raises(JournalError, match="different campaign"):
        JournalWriter(path, "fp-2", 2)
    # The matching fingerprint continues the same file.
    with JournalWriter(path, "fp-1", 2) as journal:
        journal.append({"index": 0, "outcome": "ok", "attempts": 1})
    __, records = read_journal(path)
    assert list(records) == [0]


def test_torn_trailing_line_is_skipped(tmp_path):
    path = tmp_path / "run.jsonl"
    with JournalWriter(str(path), "fp", 2) as journal:
        journal.append({"index": 0, "outcome": "ok", "attempts": 1})
    with open(path, "a") as handle:
        handle.write('{"index": 1, "outco')  # died mid-append
    __, records = read_journal(str(path))
    assert list(records) == [0]


def test_duplicate_index_latest_wins(tmp_path):
    path = tmp_path / "run.jsonl"
    with JournalWriter(str(path), "fp", 1) as journal:
        journal.append({"index": 0, "outcome": "worker-crashed", "attempts": 3})
        journal.append({"index": 0, "outcome": "ok", "attempts": 1})
    __, records = read_journal(str(path))
    assert records[0]["outcome"] == "ok"


def test_non_journal_file_refused(tmp_path):
    path = tmp_path / "not_a_journal.jsonl"
    path.write_text(json.dumps({"schema": "something/else"}) + "\n")
    with pytest.raises(JournalError, match="not a campaign journal"):
        read_journal(str(path))
    path.write_text("")
    with pytest.raises(JournalError, match="empty"):
        read_journal(str(path))


def test_closed_writer_refuses_appends(tmp_path):
    journal = JournalWriter(str(tmp_path / "run.jsonl"), "fp", 1)
    journal.close()
    with pytest.raises(ValueError, match="closed"):
        journal.append({"index": 0, "outcome": "ok"})
