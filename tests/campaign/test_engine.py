"""Campaign-engine tests: failure taxonomy, retry, determinism, resume.

Every failure-classification test here uses a *real* process death or
hang (``os._exit``, sleeping past the timeout), never a mock — the
engine's job is to survive the genuine article.  Every determinism test
asserts the merged result list is identical across worker counts,
scheduling, retries, and resume boundaries.
"""

import os

import pytest

from repro.campaign import (
    OUTCOME_OK,
    OUTCOME_TASK_ERROR,
    OUTCOME_WORKER_CRASHED,
    OUTCOME_WORKER_TIMEOUT,
    CampaignEngine,
    EngineConfig,
    RunResult,
    RunSpec,
    run_matrix,
)
from repro.campaign.tasks import (
    crash_once_task,
    crash_task,
    echo_task,
    error_task,
    sleep_task,
    square_task,
)
from repro.obs.metrics import MetricsRegistry


def square_specs(count: int) -> list:
    return [
        RunSpec(index=index, payload={"value": index})
        for index in range(count)
    ]


def merged(report) -> list:
    """The deterministic surface: outcome records without attempt
    counts (attempts legitimately vary when chaos/retries fire)."""
    return [
        (r.index, r.outcome, r.value, r.error) for r in report.results
    ]


class TestSerialPath:
    def test_all_ok(self):
        report = run_matrix(square_task, square_specs(4))
        assert report.completed == 4
        assert [r.value["square"] for r in report.results] == [0, 1, 4, 9]
        assert all(r.ok and r.attempts == 1 for r in report.results)

    def test_task_exception_is_task_error(self):
        report = run_matrix(
            error_task, [RunSpec(index=0, payload={"message": "kaboom"})]
        )
        (result,) = report.results
        assert result.outcome == OUTCOME_TASK_ERROR
        assert not result.ok
        assert "RuntimeError" in result.error and "kaboom" in result.error
        # Deterministic failures are never retried.
        assert report.retried == 0

    def test_duplicate_indices_rejected(self):
        engine = CampaignEngine(echo_task)
        with pytest.raises(ValueError, match="unique"):
            engine.run(
                [RunSpec(index=1, payload={}), RunSpec(index=1, payload={})]
            )

    def test_results_sorted_by_index(self):
        specs = [RunSpec(index=i, payload={"value": i}) for i in (3, 0, 2, 1)]
        report = run_matrix(square_task, specs)
        assert [r.index for r in report.results] == [0, 1, 2, 3]

    def test_keyboard_interrupt_yields_partial_results(self):
        def interrupting(payload):
            if payload["value"] == 2:
                raise KeyboardInterrupt
            return payload["value"]

        report = run_matrix(interrupting, square_specs(4))
        assert report.interrupted
        assert [r.index for r in report.results] == [0, 1]
        assert all(r.ok for r in report.results)


class TestParallelClassification:
    def test_parallel_matches_serial(self):
        serial = run_matrix(square_task, square_specs(6))
        parallel = run_matrix(
            square_task, square_specs(6), EngineConfig(workers=3)
        )
        assert merged(serial) == merged(parallel)
        assert [r.to_json() for r in serial.results] == [
            r.to_json() for r in parallel.results
        ]

    def test_worker_raise_is_task_error_not_retried(self):
        report = run_matrix(
            error_task,
            [RunSpec(index=0, payload={"message": "bug"})],
            EngineConfig(workers=2),
        )
        (result,) = report.results
        assert result.outcome == OUTCOME_TASK_ERROR
        assert result.attempts == 1
        assert report.retried == 0

    def test_os_exit_is_worker_crashed(self):
        report = run_matrix(
            crash_task,
            [RunSpec(index=0, payload={"code": 21})],
            EngineConfig(workers=2, retries=1, backoff_base=0.0),
        )
        (result,) = report.results
        assert result.outcome == OUTCOME_WORKER_CRASHED
        assert "before reporting" in result.error
        # First attempt crashed, was retried, crashed again: budget spent.
        assert result.attempts == 2
        assert report.crashed_attempts == 2
        assert report.retried == 1

    def test_sleep_past_timeout_is_worker_timeout(self):
        report = run_matrix(
            sleep_task,
            [RunSpec(index=0, payload={"seconds": 60.0})],
            EngineConfig(
                workers=2,
                run_timeout=0.3,
                retries=0,
                grace_seconds=0.2,
            ),
        )
        (result,) = report.results
        assert result.outcome == OUTCOME_WORKER_TIMEOUT
        assert "wall-clock" in result.error
        assert report.timed_out_attempts == 1

    def test_crash_once_recovers_on_retry(self, tmp_path):
        marker = tmp_path / "attempted"
        report = run_matrix(
            crash_once_task,
            [RunSpec(index=0, payload={"marker": str(marker), "value": 5})],
            EngineConfig(workers=2, retries=2, backoff_base=0.0),
        )
        (result,) = report.results
        assert result.outcome == OUTCOME_OK
        assert result.value == {"value": 5, "recovered": True}
        assert result.attempts == 2
        assert report.crashed_attempts == 1
        assert report.retried == 1

    def test_chaos_injection_fires_once_and_is_survived(self):
        report = run_matrix(
            square_task,
            square_specs(4),
            EngineConfig(
                workers=2,
                retries=2,
                backoff_base=0.0,
                chaos=((1, "crash"),),
            ),
        )
        assert all(r.ok for r in report.results)
        crashed = report.results[1]
        assert crashed.attempts == 2
        assert report.crashed_attempts == 1
        # ...and chaos never leaks into the merged values.
        assert merged(report) == merged(run_matrix(square_task, square_specs(4)))

    def test_unknown_chaos_kind_rejected(self):
        with pytest.raises(ValueError, match="chaos kind"):
            EngineConfig(chaos=((0, "gremlin"),))

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            EngineConfig(retries=-1)


class TestGracefulDegradation:
    def test_spawn_failure_degrades_to_serial(self, monkeypatch):
        monkeypatch.setattr(
            CampaignEngine,
            "_launch",
            lambda self, ctx, spec, active: False,
        )
        report = run_matrix(
            square_task, square_specs(4), EngineConfig(workers=4)
        )
        assert report.degraded_serial
        assert all(r.ok for r in report.results)
        assert merged(report) == merged(run_matrix(square_task, square_specs(4)))


class TestJournalAndResume:
    def test_stop_after_checkpoints_and_resume_completes(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        baseline = run_matrix(square_task, square_specs(6))

        first = run_matrix(
            square_task,
            square_specs(6),
            EngineConfig(journal=journal, stop_after=2),
            fingerprint="sq/6",
        )
        assert first.stopped
        assert first.completed == 2

        second = run_matrix(
            square_task,
            square_specs(6),
            EngineConfig(workers=2, journal=journal, resume=journal),
            fingerprint="sq/6",
        )
        assert not second.stopped
        assert second.resumed == 2
        assert second.completed == 4
        assert [r.to_json() for r in second.results] == [
            r.to_json() for r in baseline.results
        ]

    def test_resume_after_crash_merges_identically(self, tmp_path):
        """The acceptance scenario: a worker crash plus a mid-campaign
        kill, resumed, must merge byte-identically to an uninterrupted
        serial campaign."""
        journal = str(tmp_path / "run.jsonl")
        baseline = run_matrix(square_task, square_specs(5))

        first = run_matrix(
            square_task,
            square_specs(5),
            EngineConfig(
                workers=2,
                retries=2,
                backoff_base=0.0,
                chaos=((0, "crash"),),
                journal=journal,
                stop_after=3,
            ),
            fingerprint="sq/5",
        )
        assert first.stopped and first.completed == 3

        second = run_matrix(
            square_task,
            square_specs(5),
            EngineConfig(workers=2, journal=journal, resume=journal),
            fingerprint="sq/5",
        )
        assert second.resumed == 3
        assert merged(second) == merged(baseline)

    def test_missing_resume_journal_is_a_fresh_start(self, tmp_path):
        # The --journal X --resume X idiom must work on the very first
        # run, when the journal does not exist yet.
        journal = str(tmp_path / "run.jsonl")
        report = run_matrix(
            square_task,
            square_specs(3),
            EngineConfig(journal=journal, resume=journal),
            fingerprint="sq/3",
        )
        assert report.resumed == 0
        assert report.completed == 3
        assert os.path.exists(journal)

    def test_resumed_runs_do_not_reexecute(self, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        run_matrix(
            square_task,
            square_specs(3),
            EngineConfig(journal=journal),
            fingerprint="sq/3",
        )

        def exploding(payload):
            raise AssertionError("finished run was re-executed")

        resumed = run_matrix(
            exploding,
            square_specs(3),
            EngineConfig(resume=journal),
            fingerprint="sq/3",
        )
        assert resumed.resumed == 3
        assert all(r.ok for r in resumed.results)


class TestTelemetry:
    def test_metrics_registry_counters(self):
        registry = MetricsRegistry()
        report = run_matrix(
            square_task,
            square_specs(3),
            EngineConfig(workers=2, retries=1, backoff_base=0.0,
                         chaos=((0, "crash"),)),
            metrics=registry,
        )
        text = registry.render_prometheus()
        assert 'campaign_runs_total{outcome="ok"} 3' in text
        assert "campaign_retries_total 1" in text
        assert 'campaign_attempt_failures_total{kind="worker-crashed"} 1' in text
        assert "campaign_worker_utilization" in text
        assert "campaign_workers 2" in text
        assert report.counters()["outcome_ok"] == 3

    def test_report_describe_mentions_flags(self):
        report = run_matrix(
            square_task,
            square_specs(3),
            EngineConfig(stop_after=1),
        )
        assert report.stopped
        assert "checkpoint-stop" in report.describe()
        assert "workers=1" in report.describe()


class TestRunResultRoundTrip:
    def test_json_round_trip(self):
        result = RunResult(
            index=4,
            outcome=OUTCOME_WORKER_CRASHED,
            error="worker exited with code 21 before reporting a result",
            attempts=3,
        )
        assert RunResult.from_json(result.to_json()) == result

    def test_ok_round_trip_preserves_value(self):
        result = RunResult(index=0, outcome=OUTCOME_OK, value={"a": [1, 2]})
        assert RunResult.from_json(result.to_json()) == result
