"""Every shipped example must run to completion (smoke level)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(example):
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "ip_forwarding",
        "fabric_scaling",
        "latency_study",
        "design_space_exploration",
        "deadlock_detection",
        "packet_filter",
        "offchip_routing_table",
        "telemetry_tour",
        "streaming_pipeline",
    } <= names


def test_telemetry_tour_artifacts(tmp_path):
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "telemetry_tour.py"),
            str(tmp_path),
        ],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    trace = (tmp_path / "trace.json").read_text()
    metrics = (tmp_path / "metrics.prom").read_text()
    assert trace.strip() and metrics.strip()
    import json

    document = json.loads(trace)
    assert document["traceEvents"], "trace must contain events"
    assert "sim_cycles" in metrics
