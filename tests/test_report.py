"""Unit tests for paper-style reporting."""

import pytest

from repro.report import (
    Comparison,
    Table,
    area_table,
    frequency_table,
    shape_verdict,
)


class TestTable:
    def test_render_alignment(self):
        table = Table("T", ["a", "bb"])
        table.add_row("xxx", 1)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "xxx" in text and "bb" in text

    def test_row_arity_checked(self):
        table = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_area_table_layout(self):
        table = area_table("Table 1", [("1/2", 130, 66, 77)])
        text = table.render()
        assert "P/C" in text and "Slices" in text
        assert "1/2" in text and "66" in text

    def test_frequency_table_handles_missing_paper_value(self):
        table = frequency_table("freq", [("1/2", 160.7, 125.0, None)])
        assert "n/a" in table.render()


class TestComparison:
    def test_render(self):
        comp = Comparison("E1", "FF count", "66", "66", "match")
        assert "paper 66" in comp.render()


class TestShapeVerdict:
    def test_exact_match(self):
        assert shape_verdict([158, 130, 125], [158, 130, 125]) == "match"

    def test_close_match(self):
        assert shape_verdict([158, 130, 125], [160, 133, 120]) == "match"

    def test_shape_match_when_offset(self):
        assert (
            shape_verdict([158, 130, 125], [200, 170, 160]) == "shape-match"
        )

    def test_mismatch_on_direction(self):
        assert shape_verdict([158, 130, 125], [120, 130, 140]) == "mismatch"

    def test_tolerance_parameter(self):
        verdict = shape_verdict([100, 90], [160, 140], tolerance=0.3)
        assert verdict == "shape-match"

    def test_invalid_series(self):
        with pytest.raises(ValueError):
            shape_verdict([1, 2], [1])
        with pytest.raises(ValueError):
            shape_verdict([], [])
