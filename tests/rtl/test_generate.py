"""Unit tests for the wrapper/thread netlist generators."""

import pytest

from repro.hic import analyze
from repro.hic.pragmas import ConsumerRef, Dependency
from repro.memory import allocate
from repro.rtl import (
    WrapperParams,
    generate_arbitrated_wrapper,
    generate_design,
    generate_event_driven_wrapper,
    generate_lock_baseline,
    generate_thread_module,
)
from repro.synth import bind_program, synthesize_program


def fanout_dep(consumers):
    return Dependency(
        "d0",
        "prod",
        "x",
        tuple(ConsumerRef(f"c{i}", f"v{i}") for i in range(consumers)),
    )


class TestArbitratedGenerator:
    def test_baseline_ff_count_is_66(self):
        # The paper: "the baseline architecture ... requires 66 flip-flops".
        for consumers in (2, 4, 8):
            m = generate_arbitrated_wrapper(WrapperParams(consumers=consumers))
            assert m.total_ffs() == 66

    def test_luts_grow_with_consumers(self):
        luts = [
            generate_arbitrated_wrapper(WrapperParams(consumers=n)).total_luts()
            for n in (2, 4, 8)
        ]
        assert luts[0] < luts[1] < luts[2]

    def test_single_bram(self):
        m = generate_arbitrated_wrapper(WrapperParams(consumers=2))
        assert m.total_brams() == 1

    def test_guarded_read_path_grows(self):
        paths = [
            generate_arbitrated_wrapper(WrapperParams(consumers=n)).worst_path()[1]
            for n in (2, 4, 8)
        ]
        assert paths[0] < paths[2]

    def test_deplist_entries_scale_ffs(self):
        small = generate_arbitrated_wrapper(
            WrapperParams(consumers=2, deplist_entries=2)
        )
        large = generate_arbitrated_wrapper(
            WrapperParams(consumers=2, deplist_entries=16)
        )
        assert large.total_ffs() > small.total_ffs()

    def test_multi_producer_adds_arbiter(self):
        single = generate_arbitrated_wrapper(WrapperParams(consumers=2))
        multi = generate_arbitrated_wrapper(
            WrapperParams(consumers=2, producers=3)
        )
        assert multi.total_ffs() > single.total_ffs()


class TestEventDrivenGenerator:
    def test_ffs_scale_with_consumers(self):
        ffs = [
            generate_event_driven_wrapper(
                WrapperParams(consumers=n), [fanout_dep(n)]
            ).total_ffs()
            for n in (2, 4, 8)
        ]
        assert ffs[0] < ffs[1] < ffs[2]

    def test_lighter_than_arbitrated(self):
        for n in (2, 4, 8):
            arb = generate_arbitrated_wrapper(WrapperParams(consumers=n))
            ed = generate_event_driven_wrapper(
                WrapperParams(consumers=n), [fanout_dep(n)]
            )
            assert ed.total_luts() < arb.total_luts()
            assert ed.total_ffs() < arb.total_ffs()

    def test_shorter_critical_path_than_arbitrated(self):
        for n in (2, 4, 8):
            arb = generate_arbitrated_wrapper(WrapperParams(consumers=n))
            ed = generate_event_driven_wrapper(
                WrapperParams(consumers=n), [fanout_dep(n)]
            )
            assert ed.worst_path()[1] < arb.worst_path()[1]

    def test_empty_dependency_list(self):
        m = generate_event_driven_wrapper(WrapperParams(consumers=0), [])
        assert m.total_brams() == 1


class TestLockBaselineGenerator:
    def test_generates(self):
        m = generate_lock_baseline(WrapperParams(consumers=2))
        assert m.total_brams() == 1
        assert m.total_ffs() > 0

    def test_per_client_fsm_cost(self):
        small = generate_lock_baseline(WrapperParams(consumers=2))
        large = generate_lock_baseline(WrapperParams(consumers=8))
        assert large.total_luts() > small.total_luts()
        assert large.total_ffs() > small.total_ffs()


class TestThreadGenerator:
    def test_figure1_thread_modules(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsms = synthesize_program(figure1_checked, mm)
        bindings = bind_program(figure1_checked, mm, fsms)
        for name in ("t1", "t2", "t3"):
            module = generate_thread_module(fsms[name], bindings[name])
            assert module.total_ffs() > 0
            assert module.name == f"thread_{name}"

    def test_registers_contribute_ffs(self):
        checked = analyze("thread t () { int a, b, c; a = b + c; }")
        mm = allocate(checked)
        fsms = synthesize_program(checked, mm)
        bindings = bind_program(checked, mm, fsms)
        module = generate_thread_module(fsms["t"], bindings["t"])
        assert module.total_ffs() >= 96  # three 32-bit registers


class TestDesignGenerator:
    def test_top_level_composition(self, figure1_checked):
        mm = allocate(figure1_checked)
        fsms = synthesize_program(figure1_checked, mm)
        bindings = bind_program(figure1_checked, mm, fsms)
        wrapper = generate_arbitrated_wrapper(WrapperParams(consumers=2))
        threads = [
            generate_thread_module(fsms[n], bindings[n])
            for n in ("t1", "t2", "t3")
        ]
        top = generate_design("figure1", [wrapper], threads)
        assert top.total_brams() == 1
        assert top.total_ffs() > wrapper.total_ffs()
        assert len(top.child_modules()) == 4
