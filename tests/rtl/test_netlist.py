"""Unit tests for the netlist IR."""

import pytest

from repro.rtl import (
    Module,
    Net,
    PortDirection,
    Register,
    Counter,
)


def leaf_module(name="leaf"):
    m = Module(name=name)
    m.add_port("clk", PortDirection.INPUT)
    m.add_instance("r0", Register(width=8), {"clk": "clk"})
    m.add_instance("c0", Counter(width=4))
    m.note_path("p0", 3)
    return m


class TestConstruction:
    def test_add_port_creates_net(self):
        m = Module(name="m")
        m.add_port("clk", PortDirection.INPUT)
        assert "clk" in m.nets

    def test_duplicate_port_rejected(self):
        m = Module(name="m")
        m.add_port("clk", PortDirection.INPUT)
        with pytest.raises(ValueError):
            m.add_port("clk", PortDirection.INPUT)

    def test_net_width_conflict_rejected(self):
        m = Module(name="m")
        m.add_net("bus", 8)
        with pytest.raises(ValueError):
            m.add_net("bus", 9)

    def test_add_net_idempotent_same_width(self):
        m = Module(name="m")
        first = m.add_net("bus", 8)
        second = m.add_net("bus", 8)
        assert first is second

    def test_zero_width_net_rejected(self):
        with pytest.raises(ValueError):
            Net("w", 0)

    def test_instance_with_unknown_net_rejected(self):
        m = Module(name="m")
        with pytest.raises(KeyError):
            m.add_instance("r", Register(width=1), {"clk": "nothere"})

    def test_duplicate_instance_rejected(self):
        m = leaf_module()
        with pytest.raises(ValueError):
            m.add_instance("r0", Register(width=1))


class TestAggregation:
    def test_flat_totals(self):
        m = leaf_module()
        assert m.total_ffs() == 8 + 4
        assert m.total_luts() == 4

    def test_hierarchical_totals(self):
        leaf = leaf_module()
        top = Module(name="top")
        top.add_port("clk", PortDirection.INPUT)
        top.add_instance("u0", leaf, {"clk": "clk"})
        top.add_instance("u1", leaf, {"clk": "clk"})
        assert top.total_ffs() == 2 * 12
        assert top.total_luts() == 2 * 4

    def test_primitive_instances_hierarchical_names(self):
        leaf = leaf_module()
        top = Module(name="top")
        top.add_instance("u0", leaf)
        names = [name for name, __ in top.primitive_instances()]
        assert "u0.r0" in names

    def test_child_modules_deduplicated(self):
        leaf = leaf_module()
        top = Module(name="top")
        top.add_instance("u0", leaf)
        top.add_instance("u1", leaf)
        assert len(top.child_modules()) == 1


class TestPaths:
    def test_worst_path_local(self):
        m = leaf_module()
        m.note_path("deep", 7)
        name, levels = m.worst_path()
        assert levels == 7
        assert "deep" in name

    def test_worst_path_from_child(self):
        leaf = leaf_module()
        leaf.note_path("deep", 9)
        top = Module(name="top")
        top.add_instance("u0", leaf)
        top.note_path("shallow", 2)
        __, levels = top.worst_path()
        assert levels == 9

    def test_default_path_when_none_noted(self):
        m = Module(name="empty")
        name, levels = m.worst_path()
        assert levels == 1
        assert "default" in name


class TestHierarchyRender:
    def test_render_includes_counts(self):
        text = leaf_module().hierarchy()
        assert "LUT=4" in text
        assert "FF=12" in text

    def test_render_nested(self):
        leaf = leaf_module()
        top = Module(name="top")
        top.add_instance("u0", leaf)
        text = top.hierarchy()
        assert "top" in text and "leaf" in text
