"""Unit tests for behavioral thread-FSM Verilog emission."""

import re

import pytest

from repro.flow import compile_design
from repro.rtl.fsm_verilog import (
    emit_testbench,
    emit_thread_verilog,
    sanitize,
)
from repro.sim import default_intrinsic


def thread_text(source, thread=None, **kwargs):
    design = compile_design(source, **kwargs)
    name = thread or design.checked.program.threads[0].name
    return design.thread_verilog(name)


class TestStructure:
    def test_module_balanced(self, figure1_source):
        text = thread_text(figure1_source, thread="t1")
        assert text.startswith("module thread_t1_fsm")
        assert text.count("endmodule") == 1
        assert text.count("endfunction") >= 1

    def test_state_localparams(self, figure1_source):
        text = thread_text(figure1_source, thread="t2")
        assert "localparam S_START0" in text
        assert "case (state)" in text

    def test_all_referenced_names_declared(self, figure1_source):
        text = thread_text(figure1_source, thread="t2")
        # Every bare identifier used in the always block must be declared.
        for name in ("x1", "y1", "y2"):
            assert re.search(rf"reg \[31:0\] {name}\b", text), name

    def test_constants_become_localparams(self):
        source = "#constant{host, 42}\nthread t () { int x; x = host + 1; }"
        text = thread_text(source)
        assert "localparam [31:0] host = 32'd42;" in text
        assert not re.search(r"reg \[31:0\] host\b", text)


class TestMemoryHandshake:
    def test_guarded_read_uses_port_c(self, figure1_source):
        text = thread_text(figure1_source, thread="t2")
        assert "mem_port <= 2'd2;" in text  # C
        assert "if (mem_grant)" in text

    def test_guarded_write_uses_port_d(self, figure1_source):
        text = thread_text(figure1_source, thread="t1")
        assert "mem_port <= 2'd3;" in text  # D
        assert "mem_we   <= 1'b1;" in text

    def test_array_access_renders_offset(self):
        text = thread_text("thread t () { int a[4], i, x; x = a[i + 1]; }")
        assert "mem_addr <= (9'd" in text

    def test_register_only_thread_has_no_mem_ports(self):
        text = thread_text("thread t () { int x, y; x = y + 1; }")
        assert "mem_req" not in text

    def test_receive_handshake(self):
        source = (
            "#interface{eth, gige}\n"
            "thread t () { message m; receive(m, eth); }"
        )
        text = thread_text(source)
        assert "rx_ready <= 1'b1;" in text
        assert "if (rx_valid)" in text

    def test_transmit_handshake(self):
        source = (
            "#interface{eth, gige}\n"
            "thread t () { message m; receive(m, eth); transmit(m, eth); }"
        )
        text = thread_text(source)
        assert "tx_valid <= 1'b1;" in text


class TestExpressions:
    def test_precedence_parenthesized(self):
        text = thread_text("thread t () { int x, y, z; x = y + z * 2; }")
        assert "(y + (z * 32'd2))" in text

    def test_guard_rendered_in_transition(self):
        text = thread_text(
            "thread t () { int x; if (x > 3) { x = 0; } }"
        )
        assert "if ((x > 32'd3) != 0) state <=" in text

    def test_ternary(self):
        text = thread_text("thread t () { int x, y; x = y > 0 ? y : 1; }")
        assert "?" in text and ":" in text

    def test_function_matches_simulator_semantics(self):
        # The emitted fn_g body must compute default_intrinsic("g").
        text = thread_text(
            "thread t () { int x, a, b; x = g(a, b); }"
        )
        salt = sum(ord(c) for c in "g")
        assert f"acc = 32'd{salt};" in text
        assert text.count("acc = acc * 32'd2654435761") == 2
        # Cross-check one value in Python:
        assert default_intrinsic("g")(0, 0) == (
            ((salt * 2654435761 + 1) & 0xFFFFFFFF) * 2654435761 + 1
        ) & 0xFFFFFFFF

    def test_functions_emitted_once_per_signature(self):
        text = thread_text(
            "thread t () { int x, a; x = g(a); x = g(x); }"
        )
        assert text.count("function [31:0] fn_g;") == 1


class TestSanitize:
    def test_temp_names(self):
        assert sanitize("$t0") == "tmp_t0"

    def test_plain_names_unchanged(self):
        assert sanitize("counter") == "counter"


class TestTestbench:
    def test_testbench_skeleton(self):
        text = emit_testbench("figure1", cycles=500)
        assert "module tb_figure1;" in text
        assert "repeat (500)" in text
        assert "always #4 clk" in text  # 125 MHz


class TestOptimizedEmission:
    def test_optimized_fsm_emits(self, figure1_source):
        design = compile_design(figure1_source, optimize=True)
        for name in ("t1", "t2", "t3"):
            text = design.thread_verilog(name)
            assert "endmodule" in text


class TestMultiWayBranches:
    def test_case_renders_nested_else_chain(self):
        text = thread_text(
            "thread t () { int s, out; "
            "case (s) { of 0: { out = 1; } of 1, 2: { out = 2; } "
            "default: { out = 3; } } }"
        )
        # Two guarded transitions plus the default arm.
        assert text.count("else begin") >= 2
        assert "((s == 32'd1) || (s == 32'd2)) != 0" in text
        # Balanced begin/end inside the module body (word-boundary match
        # so "endmodule"/"endcase" do not count as "end").
        begins = len(re.findall(r"\bbegin\b", text))
        ends = len(re.findall(r"\bend\b", text))
        assert begins == ends

    def test_while_loop_renders_back_edge(self):
        text = thread_text(
            "thread t () { int i; while (i < 3) { i = i + 1; } }"
        )
        # The test state jumps backward (to a lower-numbered state) when
        # the condition holds the loop.
        assert "if ((i < 32'd3) != 0) state <=" in text
