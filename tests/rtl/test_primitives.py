"""Unit tests for the macro primitive cost models."""

import pytest

from repro.rtl import (
    Adder,
    BramMacro,
    CamRow,
    Counter,
    Decoder,
    EqComparator,
    FsmLogic,
    MagComparator,
    Mux,
    PriorityEncoder,
    RandomLogic,
    Register,
    RoundRobinArbiterMacro,
    clog2,
)


class TestClog2:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, 1), (1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (512, 9)],
    )
    def test_values(self, value, expected):
        assert clog2(value) == expected


class TestBasicCosts:
    def test_register_is_ffs_only(self):
        reg = Register(width=32)
        assert reg.ffs() == 32
        assert reg.luts() == 0

    def test_counter_lut_per_bit(self):
        counter = Counter(width=4)
        assert counter.ffs() == 4
        assert counter.luts() == 4
        assert counter.logic_levels() == 1

    def test_adder_carry_chain(self):
        assert Adder(width=32).luts() == 32
        assert Adder(width=32).logic_levels() == 1

    def test_bram_has_no_fabric_cost(self):
        bram = BramMacro()
        assert bram.luts() == 0 and bram.ffs() == 0
        assert bram.brams() == 1


class TestMux:
    def test_two_to_one(self):
        mux = Mux(width=9, inputs=2)
        assert mux.luts() == 9
        assert mux.logic_levels() == 1

    def test_four_to_one(self):
        mux = Mux(width=9, inputs=4)
        assert mux.luts() == 18
        assert mux.logic_levels() == 2

    def test_degenerate_single_input(self):
        mux = Mux(width=9, inputs=1)
        assert mux.luts() == 0
        assert mux.logic_levels() == 0

    def test_lut_growth_is_monotone(self):
        costs = [Mux(width=9, inputs=n).luts() for n in (2, 4, 8)]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]


class TestComparators:
    def test_eq_comparator_9_bits(self):
        cmp9 = EqComparator(width=9)
        # 5 partials + AND tree (2 + 1)
        assert cmp9.luts() == 8
        assert cmp9.logic_levels() == 3

    def test_eq_comparator_small(self):
        assert EqComparator(width=2).luts() == 1
        assert EqComparator(width=2).logic_levels() == 1

    def test_mag_comparator(self):
        assert MagComparator(width=32).luts() == 32


class TestCamRow:
    def test_ff_is_key_plus_valid(self):
        assert CamRow(key_bits=9).ffs() == 10

    def test_luts_dominated_by_comparator(self):
        row = CamRow(key_bits=9)
        assert row.luts() == EqComparator(width=9).luts() + 1


class TestArbiterMacro:
    def test_pointer_ffs(self):
        assert RoundRobinArbiterMacro(clients=8).ffs() == 3
        assert RoundRobinArbiterMacro(clients=2).ffs() == 1

    def test_luts_scale_with_clients(self):
        small = RoundRobinArbiterMacro(clients=2).luts()
        large = RoundRobinArbiterMacro(clients=8).luts()
        assert large > small

    def test_single_client_degenerate(self):
        assert RoundRobinArbiterMacro(clients=1).luts() == 1


class TestControl:
    def test_decoder(self):
        assert Decoder(outputs=4).luts() == 4
        assert Decoder(outputs=1).luts() == 0

    def test_wide_decoder_two_levels(self):
        assert Decoder(outputs=32).logic_levels() == 2

    def test_priority_encoder(self):
        assert PriorityEncoder(inputs=3).luts() == 5
        assert PriorityEncoder(inputs=1).luts() == 0

    def test_fsm_ffs_are_state_bits(self):
        assert FsmLogic(states=5, transitions=8).ffs() == 3

    def test_random_logic_pass_through(self):
        logic = RandomLogic(lut_count=7, levels=2)
        assert logic.luts() == 7
        assert logic.logic_levels() == 2

    def test_describe_mentions_costs(self):
        text = Register(width=4).describe()
        assert "FF=4" in text
