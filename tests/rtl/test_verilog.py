"""Unit tests for the Verilog emitter."""

from repro.hic.pragmas import ConsumerRef, Dependency
from repro.rtl import (
    Module,
    PortDirection,
    Register,
    WrapperParams,
    emit_verilog,
    generate_arbitrated_wrapper,
    generate_design,
    generate_event_driven_wrapper,
)


def arb_verilog(consumers=2):
    return emit_verilog(
        generate_arbitrated_wrapper(WrapperParams(consumers=consumers))
    )


class TestEmission:
    def test_module_definitions_balanced(self):
        text = arb_verilog()
        definitions = text.count("\nmodule ")
        assert definitions >= 2
        assert text.count("endmodule") == definitions

    def test_primitive_definitions_emitted_once(self):
        text = arb_verilog()
        assert text.count("module repro_cam_row") == 1
        assert text.count(" dep_row") == 4  # four dep-list row instances

    def test_parameters_rendered(self):
        text = arb_verilog(consumers=4)
        assert ".INPUTS(4)" in text
        assert ".KEY_BITS(9)" in text

    def test_ports_declared(self):
        text = arb_verilog()
        assert "input  wire [1:0] portc_req" in text
        assert "output wire [35:0] portc_rdata" in text

    def test_internal_nets_declared(self):
        text = arb_verilog()
        assert "wire [8:0] p1_addr;" in text

    def test_timing_annotations_present(self):
        text = arb_verilog()
        assert "timing: path 'guarded_read'" in text

    def test_timescale_header(self):
        assert arb_verilog().startswith("// Generated")
        assert "`timescale 1ns / 1ps" in arb_verilog()


class TestHierarchy:
    def test_children_emitted_before_top(self):
        dep = Dependency(
            "d0", "p", "x", (ConsumerRef("c0", "v0"), ConsumerRef("c1", "v1"))
        )
        arb = generate_arbitrated_wrapper(WrapperParams(consumers=2))
        ed = generate_event_driven_wrapper(WrapperParams(consumers=2), [dep])
        top = generate_design("both", [arb, ed], [])
        text = emit_verilog(top)
        assert text.index("module arbitrated_wrapper_c2") < text.index(
            "module both"
        )
        assert text.index("module event_driven_wrapper_c2") < text.index(
            "module both"
        )

    def test_shared_child_emitted_once(self):
        leaf = Module(name="leaf")
        leaf.add_port("clk", PortDirection.INPUT)
        leaf.add_instance("r", Register(width=2), {"clk": "clk"})
        top = Module(name="top")
        top.add_port("clk", PortDirection.INPUT)
        top.add_instance("u0", leaf, {"clk": "clk"})
        top.add_instance("u1", leaf, {"clk": "clk"})
        text = emit_verilog(top)
        assert text.count("module leaf") == 1
        assert text.count("leaf u0") == 1
        assert text.count("leaf u1") == 1

    def test_bus_widths(self):
        text = arb_verilog(consumers=8)
        # 8 consumers x 9 address bits
        assert "[71:0] portc_addr" in text
