"""Unit tests for the runtime watchdog and its recovery policies."""

import pytest

from repro.core import (
    ArbitratedController,
    ControllerError,
    MemRequest,
    RuntimeDeadlockError,
    WatchdogTimeout,
)
from repro.faults import RecoveryPolicy, Watchdog
from repro.memory import BlockRam, DependencyEntry, DependencyList
from repro.sim import SimulationKernel


def make_rig(consumers=1):
    names = [f"c{i}" for i in range(consumers)]
    deplist = DependencyList(
        bram="bram0",
        entries=[DependencyEntry("d0", consumers, 0, "prod", tuple(names))],
    )
    controller = ArbitratedController(
        BlockRam("bram0"), deplist, names, ["prod"]
    )
    kernel = SimulationKernel(executors={}, controllers={"bram0": controller})
    return kernel, controller


def blocked_read_traffic(controller):
    """Keep re-submitting a guarded read that can never be granted (the
    producer never writes), until a grant ever happens."""

    def hook(cycle, kernel):
        if not controller.waits_for(port="C"):
            controller.submit(MemRequest("c0", "C", 0, False, dep_id="d0"))

    return hook


class TestConstruction:
    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            Watchdog(read_timeout=0)
        with pytest.raises(ValueError):
            Watchdog(deadlock_window=0)

    def test_policy_accepts_strings(self):
        assert Watchdog(policy="warn-continue").policy is (
            RecoveryPolicy.WARN_CONTINUE
        )

    def test_registered_in_kernel_context(self):
        kernel, __ = make_rig()
        watchdog = Watchdog().attach(kernel)
        assert kernel.context["watchdog"] is watchdog


class TestBlockedReadTimeout:
    def test_abort_raises_structured_error(self):
        kernel, controller = make_rig()
        kernel.add_pre_cycle_hook(blocked_read_traffic(controller))
        Watchdog(read_timeout=5, deadlock_window=10_000, policy="abort").attach(
            kernel
        )
        with pytest.raises(WatchdogTimeout) as exc_info:
            kernel.run(50)
        error = exc_info.value
        assert isinstance(error, ControllerError)
        assert error.bram == "bram0"
        assert error.client == "c0"
        assert error.blocked_cycles >= 5
        assert "blocked" in error.describe()

    def test_warn_continue_records_one_event_and_survives(self):
        kernel, controller = make_rig()
        kernel.add_pre_cycle_hook(blocked_read_traffic(controller))
        watchdog = Watchdog(
            read_timeout=5, deadlock_window=10_000, policy="warn-continue"
        ).attach(kernel)
        kernel.run(30)
        assert kernel.cycle == 30
        assert watchdog.tripped
        # The same blocked streak is reported once, not every cycle.
        assert len(watchdog.events) == 1
        event = watchdog.events[0]
        assert event.kind == "blocked-read-timeout"
        assert event.action == "warned"

    def test_break_dependency_unblocks_the_read(self):
        kernel, controller = make_rig()
        kernel.add_pre_cycle_hook(blocked_read_traffic(controller))
        watchdog = Watchdog(
            read_timeout=5, deadlock_window=10_000, policy="break-dependency"
        ).attach(kernel)
        kernel.run(30)
        waits = controller.waits_for(port="C")
        assert len(waits) == 1  # the stuck read eventually completed
        assert waits[0] >= 5
        assert watchdog.degradations
        assert watchdog.events[0].action == "broke-dependency"

    def test_no_events_below_threshold(self):
        kernel, controller = make_rig()
        kernel.add_pre_cycle_hook(blocked_read_traffic(controller))
        watchdog = Watchdog(
            read_timeout=100, deadlock_window=10_000, policy="abort"
        ).attach(kernel)
        kernel.run(50)
        assert not watchdog.tripped


class TestSystemDeadlock:
    def test_abort_raises_runtime_deadlock(self):
        kernel, controller = make_rig()
        kernel.add_pre_cycle_hook(blocked_read_traffic(controller))
        Watchdog(
            read_timeout=10_000, deadlock_window=8, policy="abort"
        ).attach(kernel)
        with pytest.raises(RuntimeDeadlockError) as exc_info:
            kernel.run(100)
        assert exc_info.value.stalled_cycles == 8
        assert "no executor progress" in str(exc_info.value)

    def test_idle_system_is_not_a_deadlock(self):
        # Zero progress with zero blocked requests is quiescence, not
        # deadlock: a finished program must not trip the detector.
        kernel, __ = make_rig()
        watchdog = Watchdog(
            read_timeout=10_000, deadlock_window=8, policy="abort"
        ).attach(kernel)
        kernel.run(100)
        assert not watchdog.tripped

    def test_report_renders_events(self):
        kernel, controller = make_rig()
        kernel.add_pre_cycle_hook(blocked_read_traffic(controller))
        watchdog = Watchdog(
            read_timeout=10_000, deadlock_window=8, policy="warn-continue"
        ).attach(kernel)
        kernel.run(40)
        assert "system-deadlock" in watchdog.report()

    def test_quiet_report(self):
        kernel, __ = make_rig()
        watchdog = Watchdog().attach(kernel)
        kernel.run(5)
        assert watchdog.report() == "watchdog: no events"
