"""Unit tests for the fault models and the seeded sampler."""

import random

import pytest

from repro.core import Organization
from repro.faults.models import (
    FAULT_KINDS,
    DeplistCorruption,
    FaultSurface,
    ProducerStall,
    RequestDrop,
    RequestDuplicate,
    SeuBitFlip,
    sample_fault,
)
from repro.flow import build_simulation, compile_design
from tests.conftest import PIPELINE_SOURCE


@pytest.fixture(scope="module")
def surface():
    design = compile_design(
        PIPELINE_SOURCE, organization=Organization.ARBITRATED
    )
    return FaultSurface.from_simulation(build_simulation(design))


class TestFaultSurface:
    def test_brams_and_entries_discovered(self, surface):
        assert surface.brams
        assert {e.dep_id for e in surface.entries} == {"d1", "d2"}

    def test_producers_and_addresses(self, surface):
        assert set(surface.producers) == {"stage1", "stage2"}
        assert len(surface.guarded_addresses) == len(
            {e.base_address for e in surface.entries}
        )

    def test_clients_are_threads(self, surface):
        assert set(surface.clients) == {"stage1", "stage2", "stage3"}

    def test_event_driven_surface_recovers_entries(self):
        design = compile_design(
            PIPELINE_SOURCE, organization=Organization.EVENT_DRIVEN
        )
        ed_surface = FaultSurface.from_simulation(build_simulation(design))
        assert {e.dep_id for e in ed_surface.entries} == {"d1", "d2"}


class TestSampler:
    def test_same_seed_same_faults(self, surface):
        first = [
            sample_fault(random.Random(42), kind, surface, 400)
            for kind in FAULT_KINDS
        ]
        second = [
            sample_fault(random.Random(42), kind, surface, 400)
            for kind in FAULT_KINDS
        ]
        assert first == second

    def test_every_kind_sampleable(self, surface):
        rng = random.Random(1)
        kinds = {
            type(sample_fault(rng, kind, surface, 400))
            for kind in FAULT_KINDS
        }
        assert kinds == {
            SeuBitFlip,
            ProducerStall,
            RequestDrop,
            RequestDuplicate,
            DeplistCorruption,
        }

    def test_fire_cycle_within_horizon(self, surface):
        rng = random.Random(9)
        for kind in FAULT_KINDS * 10:
            fault = sample_fault(rng, kind, surface, 100)
            assert 1 <= fault.at_cycle < 100

    def test_unknown_kind_rejected(self, surface):
        with pytest.raises(ValueError):
            sample_fault(random.Random(0), "cosmic-ray", surface, 100)

    def test_describe_names_the_kind(self, surface):
        rng = random.Random(3)
        for kind in FAULT_KINDS:
            fault = sample_fault(rng, kind, surface, 200)
            assert fault.kind == kind
            assert kind in fault.describe()
