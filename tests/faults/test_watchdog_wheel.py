"""Watchdog detection under the event-wheel kernel.

The watchdog derives its thresholds from *cycle numbers*, not from how
many times its hook happened to run — so both detectors must fire at
exactly the same cycle on the reference and wheel kernels, even when
the wheel skipped straight over most of the blocked stretch.  The rig:
the Figure-1 program with its producer silenced by a fault, leaving the
consumers' guarded reads blocked forever.
"""

import pytest

from repro.core import Organization, WatchdogTimeout
from repro.faults import ProducerStall
from repro.flow import build_simulation, compile_design

FIGURE1 = """
thread t1 () {
  int x1, xtmp, x2;
  #consumer{mt1,[t2,y1],[t3,z1]}
  x1 = f(xtmp, x2);
}
thread t2 () {
  int y1, y2;
  #producer{mt1,[t1,x1]}
  y1 = g(x1, y2);
}
thread t3 () {
  int z1, z2;
  #producer{mt1,[t1,x1]}
  z1 = h(x1, z2);
}
"""

CYCLES = 400


def stalled_run(kernel, **watchdog_kwargs):
    """Figure 1 with producer t1 dead from cycle 0: t2 and t3 block on
    the mt1 guard forever."""
    design = compile_design(FIGURE1, organization=Organization.ARBITRATED)
    sim = build_simulation(design, kernel=kernel)
    sim.inject_faults([ProducerStall(at_cycle=0, client="t1", duration=None)])
    watchdog = sim.attach_watchdog(**watchdog_kwargs)
    sim.run(CYCLES)
    return sim, watchdog


class TestBlockedReadTimeout:
    def test_fires_at_identical_cycles(self):
        events = {}
        for kernel in ("reference", "wheel"):
            __, watchdog = stalled_run(
                kernel,
                read_timeout=25,
                deadlock_window=10_000,
                policy="warn-continue",
            )
            assert watchdog.tripped
            assert any(
                e.kind == "blocked-read-timeout" for e in watchdog.events
            )
            events[kernel] = watchdog.events
        assert events["wheel"] == events["reference"]

    def test_wheel_skips_the_blocked_stretch(self):
        sim, watchdog = stalled_run(
            "wheel",
            read_timeout=25,
            deadlock_window=10_000,
            policy="warn-continue",
        )
        assert watchdog.tripped
        assert sim.kernel.cycles_skipped > CYCLES // 2
        assert (
            sim.kernel.cycles_executed + sim.kernel.cycles_skipped == CYCLES
        )

    def test_abort_raises_at_identical_cycles(self):
        outcomes = {}
        for kernel in ("reference", "wheel"):
            design = compile_design(
                FIGURE1, organization=Organization.ARBITRATED
            )
            sim = build_simulation(design, kernel=kernel)
            sim.inject_faults(
                [ProducerStall(at_cycle=0, client="t1", duration=None)]
            )
            sim.attach_watchdog(
                read_timeout=25, deadlock_window=10_000, policy="abort"
            )
            with pytest.raises(WatchdogTimeout) as exc_info:
                sim.run(CYCLES)
            outcomes[kernel] = (
                sim.kernel.cycle,
                exc_info.value.client,
                exc_info.value.blocked_cycles,
            )
        assert outcomes["wheel"] == outcomes["reference"]


class TestSystemDeadlock:
    def test_fires_at_identical_cycles(self):
        events = {}
        for kernel in ("reference", "wheel"):
            __, watchdog = stalled_run(
                kernel,
                read_timeout=10_000,
                deadlock_window=40,
                policy="warn-continue",
            )
            assert any(e.kind == "system-deadlock" for e in watchdog.events)
            events[kernel] = watchdog.events
        assert events["wheel"] == events["reference"]

    def test_break_dependency_recovers_identically(self):
        """break-dependency force-drains the guard and resets the
        detector — repeated firings must land on the same cycles too."""
        events = {}
        for kernel in ("reference", "wheel"):
            __, watchdog = stalled_run(
                kernel,
                read_timeout=30,
                deadlock_window=10_000,
                policy="break-dependency",
            )
            assert watchdog.degradations
            events[kernel] = watchdog.events
        assert events["wheel"] == events["reference"]
