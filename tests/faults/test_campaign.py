"""Campaign-level tests: classification, determinism, and the CLI."""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.campaign import EngineConfig
from repro.faults import CampaignConfig, Classification, run_campaign
from repro.faults.campaign import (
    CAMPAIGN_SOURCE,
    CONFIG_DEFAULTS,
    ENGINE_DEFAULTS,
    CampaignReport,
    _diverged,
    _faults_parser,
)

GOLDEN_REPORT = (
    Path(__file__).parent / "golden" / "campaign_smoke_report.txt"
)

#: The committed golden fixture's exact configuration (also the CI
#: ``campaign-smoke`` scenario).
SMOKE_CONFIG = CampaignConfig(
    seed=7, runs=4, cycles=250, organizations=("arbitrated",)
)
SMOKE_CLI = [
    "faults",
    "--seed", "7",
    "--runs", "4",
    "--cycles", "250",
    "--organization", "arbitrated",
]


class TestClassification:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(CampaignConfig(seed=7, runs=6, cycles=300))

    def test_every_run_classified(self, report):
        cfg = report.config
        assert len(report.outcomes) == cfg.runs * len(cfg.organizations)
        assert sum(report.by_classification().values()) == len(report.outcomes)

    def test_at_least_four_kinds_classified(self, report):
        # Acceptance floor: the campaign exercises >= 4 distinct fault
        # kinds across the two organizations.
        assert len(report.kinds_classified()) >= 4

    def test_both_organizations_covered(self, report):
        assert {o.organization for o in report.outcomes} == {
            "arbitrated",
            "event_driven",
        }

    def test_detections_happen(self, report):
        counts = report.by_classification()
        assert counts[Classification.DETECTED_RECOVERED.value] > 0

    def test_render_mentions_every_run(self, report):
        text = report.render()
        for outcome in report.outcomes:
            assert f"run {outcome.organization}#{outcome.index}:" in text
        assert "totals:" in text

    def test_abort_policy_produces_aborts(self):
        report = run_campaign(
            CampaignConfig(
                seed=7,
                runs=4,
                cycles=300,
                organizations=("arbitrated",),
                policy="abort",
            )
        )
        counts = report.by_classification()
        assert counts[Classification.DETECTED_ABORTED.value] > 0
        aborted = [
            o
            for o in report.outcomes
            if o.classification is Classification.DETECTED_ABORTED
        ]
        # Aborts carry the structured error description, not a bare hang.
        assert all(o.error for o in aborted)


class TestDeterminism:
    def test_same_config_renders_identically(self):
        config = CampaignConfig(
            seed=11, runs=3, cycles=150, organizations=("arbitrated",)
        )
        first = run_campaign(config).render()
        second = run_campaign(config).render()
        assert first == second

    def test_different_seeds_differ(self):
        base = dict(runs=3, cycles=150, organizations=("arbitrated",))
        first = run_campaign(CampaignConfig(seed=1, **base)).render()
        second = run_campaign(CampaignConfig(seed=2, **base)).render()
        assert first != second


class TestEngineIntegration:
    """The fault campaign through the fault-tolerant engine: the merged
    report must be byte-identical across worker counts, injected
    crashes, and resume boundaries (the acceptance criterion)."""

    def test_parallel_render_matches_serial(self):
        serial = run_campaign(SMOKE_CONFIG).render()
        parallel = run_campaign(
            SMOKE_CONFIG, engine=EngineConfig(workers=2)
        ).render()
        assert parallel == serial

    def test_chaos_crash_is_retried_and_invisible(self):
        report = run_campaign(
            SMOKE_CONFIG,
            engine=EngineConfig(
                workers=2, retries=2, backoff_base=0.0, chaos=((1, "crash"),)
            ),
        )
        assert report.engine.crashed_attempts == 1
        assert report.engine.retried == 1
        assert report.render() == run_campaign(SMOKE_CONFIG).render()

    def test_exhausted_retries_classify_worker_crashed(self):
        report = run_campaign(
            SMOKE_CONFIG,
            engine=EngineConfig(
                workers=2, retries=0, backoff_base=0.0, chaos=((1, "crash"),)
            ),
        )
        by_class = report.by_classification()
        assert by_class[Classification.WORKER_CRASHED.value] == 1
        assert "worker-crashed" in report.render()

    def test_crash_stop_resume_merges_identically(self, tmp_path):
        """Kill-and-resume with an injected crash == uninterrupted serial."""
        journal = str(tmp_path / "campaign.jsonl")
        first = run_campaign(
            SMOKE_CONFIG,
            engine=EngineConfig(
                workers=2,
                retries=2,
                backoff_base=0.0,
                chaos=((1, "crash"),),
                journal=journal,
                stop_after=2,
            ),
        )
        assert first.engine.stopped
        assert first.engine.completed == 2
        second = run_campaign(
            SMOKE_CONFIG,
            engine=EngineConfig(workers=2, journal=journal, resume=journal),
        )
        assert second.engine.resumed == 2
        assert second.render() == run_campaign(SMOKE_CONFIG).render()

    def test_golden_fixture_is_honest(self):
        """The committed CI golden must equal a fresh serial run."""
        assert GOLDEN_REPORT.read_text() == (
            run_campaign(SMOKE_CONFIG).render() + "\n"
        )

    def test_partial_report_renders_marker(self):
        full = run_campaign(SMOKE_CONFIG)
        partial = CampaignReport(
            config=SMOKE_CONFIG,
            outcomes=full.outcomes[:1],
            interrupted=True,
        )
        text = partial.render()
        assert "partial: 1/4 runs" in text
        assert "interrupted: true" in text
        assert "interrupted" not in full.render()


class TestDefaultsSingleSource:
    """The argparse defaults must be derived from the dataclasses —
    asserted attribute by attribute so they can never drift."""

    def test_parser_defaults_match_dataclasses(self):
        args = _faults_parser().parse_args([])
        assert args.seed == CONFIG_DEFAULTS.seed
        assert args.runs == CONFIG_DEFAULTS.runs
        assert args.cycles == CONFIG_DEFAULTS.cycles
        assert args.policy == CONFIG_DEFAULTS.policy
        assert (
            tuple(args.kinds.split(",")) == CONFIG_DEFAULTS.fault_kinds
        )
        assert args.read_timeout == CONFIG_DEFAULTS.read_timeout
        assert args.deadlock_window == CONFIG_DEFAULTS.deadlock_window
        assert args.workers == ENGINE_DEFAULTS.workers
        assert args.run_timeout == ENGINE_DEFAULTS.run_timeout
        assert args.retries == ENGINE_DEFAULTS.retries
        assert args.journal == ENGINE_DEFAULTS.journal
        assert args.resume == ENGINE_DEFAULTS.resume
        assert args.stop_after == ENGINE_DEFAULTS.stop_after

    def test_default_config_equals_dataclass(self):
        assert CONFIG_DEFAULTS == CampaignConfig()
        assert ENGINE_DEFAULTS == EngineConfig()


class TestDivergence:
    def test_prefix_consistency_is_clean(self):
        golden = {"t": [(1,), (2,), (3,)]}
        assert not _diverged(golden, {"t": [(1,), (2,)]})  # delayed
        assert not _diverged(golden, {"t": [(1,), (2,), (3,)]})

    def test_any_divergent_round_is_corruption(self):
        golden = {"t": [(1,), (2,), (3,)]}
        assert _diverged(golden, {"t": [(1,), (9,)]})


class TestCli:
    def run_cli(self, capsys, *extra):
        code = main(
            [
                "faults",
                "--seed",
                "7",
                "--runs",
                "2",
                "--cycles",
                "150",
                "--organization",
                "arbitrated",
                *extra,
            ]
        )
        return code, capsys.readouterr().out

    def test_exit_zero_and_report(self, capsys):
        code, out = self.run_cli(capsys)
        assert code == 0
        assert "fault campaign" in out
        assert "totals:" in out

    def test_cli_output_is_deterministic(self, capsys):
        __, first = self.run_cli(capsys)
        __, second = self.run_cli(capsys)
        assert first == second

    def test_unknown_kind_rejected(self, capsys):
        code = main(["faults", "--kinds", "gremlin"])
        assert code == 2
        assert "unknown fault kinds" in capsys.readouterr().err

    def test_kind_filter_respected(self, capsys):
        code, out = self.run_cli(capsys, "--kinds", "producer-stall")
        assert code == 0
        for kind in ("seu", "request-drop", "deplist-corruption"):
            assert f"  {kind}:" not in out

    def test_report_file_written(self, capsys, tmp_path):
        path = tmp_path / "report.txt"
        code, out = self.run_cli(capsys, "--report", str(path))
        assert code == 0
        assert path.read_text().strip() in out

    def test_missing_source_file(self, capsys):
        code = main(["faults", "--source", "/nonexistent/x.hic"])
        assert code == 2

    def test_source_file_accepted(self, capsys, tmp_path):
        path = tmp_path / "design.hic"
        path.write_text(CAMPAIGN_SOURCE)
        code, out = self.run_cli(capsys, "--source", str(path))
        assert code == 0
        assert "totals:" in out

    def test_engine_summary_on_stderr_only(self, capsys, tmp_path):
        path = tmp_path / "report.txt"
        code = main(
            ["faults", "--seed", "7", "--runs", "2", "--cycles", "150",
             "--organization", "arbitrated", "--report", str(path)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "engine: workers=1" in captured.err
        # Wall-clock telemetry must never leak into the deterministic
        # surfaces: neither stdout nor the report artifact.
        assert "engine:" not in captured.out
        assert "engine:" not in path.read_text()

    def test_engine_metrics_written(self, capsys, tmp_path):
        path = tmp_path / "metrics.prom"
        code, __ = self.run_cli(capsys, "--engine-metrics", str(path))
        assert code == 0
        text = path.read_text()
        assert 'campaign_runs_total{outcome="ok"} 2' in text
        assert "campaign_workers 1" in text


class TestCliRobustness:
    """Exit codes and byte-identity of the checkpoint/resume CLI flow —
    the same scenario the CI ``campaign-smoke`` job runs."""

    def test_chaos_stop_resume_reproduces_golden(self, capsys, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        report_path = tmp_path / "resumed.txt"
        code = main(
            SMOKE_CLI
            + [
                "--workers", "2",
                "--retries", "2",
                "--chaos-crash", "1",
                "--journal", journal,
                "--stop-after", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 3
        assert "checkpoint: stopped after 2 new results" in out
        code = main(
            SMOKE_CLI
            + [
                "--workers", "2",
                "--journal", journal,
                "--resume", journal,
                "--report", str(report_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert report_path.read_bytes() == GOLDEN_REPORT.read_bytes()

    def test_resume_refuses_foreign_journal(self, capsys, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        assert main(SMOKE_CLI + ["--journal", journal]) == 0
        capsys.readouterr()
        # Same journal, different campaign config: refused, not merged.
        code = main(
            SMOKE_CLI[:-1] + ["both", "--resume", journal]
        )
        assert code == 1
        assert "different campaign" in capsys.readouterr().err

    def test_interrupt_mid_campaign_renders_partial_and_exits_130(
        self, capsys, monkeypatch
    ):
        import repro.faults.campaign as campaign_module

        real_run_one = campaign_module.run_one

        def interrupting(payload):
            if payload["index"] == 2:
                raise KeyboardInterrupt
            return real_run_one(payload)

        monkeypatch.setattr(campaign_module, "run_one", interrupting)
        code = main(SMOKE_CLI)
        out = capsys.readouterr().out
        assert code == 130
        assert "partial: 2/4 runs" in out
        assert "interrupted: true" in out
        assert "run arbitrated#0:" in out

    def test_interrupt_before_any_result_exits_130(self, capsys, monkeypatch):
        import repro.faults.campaign as campaign_module

        def interrupting(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(campaign_module, "run_campaign", interrupting)
        code = main(SMOKE_CLI)
        assert code == 130
        assert "interrupted before" in capsys.readouterr().err


class TestProfiledCampaign:
    """Campaign-wide bottleneck aggregation: ``--profile`` merges the
    per-run attribution ledgers into a per-organization heatmap that is
    part of the deterministic result surface."""

    PROFILED = dataclasses.replace(SMOKE_CONFIG, profile=True, runs=6)

    def test_heatmap_rendered_only_when_profiled(self):
        profiled = run_campaign(self.PROFILED).render()
        plain = run_campaign(SMOKE_CONFIG).render()
        assert "bottleneck heatmap" in profiled
        assert "bottleneck heatmap" not in plain

    def test_parallel_profile_merge_matches_serial(self):
        serial = run_campaign(self.PROFILED)
        parallel = run_campaign(
            self.PROFILED, engine=EngineConfig(workers=2)
        )
        assert serial.render() == parallel.render()
        assert (
            serial.profile_by_organization()
            == parallel.profile_by_organization()
        )

    def test_merged_profile_conserves_campaign_cycles(self):
        report = run_campaign(self.PROFILED)
        merged = report.profile_by_organization()["arbitrated"]
        assert merged["runs"] == self.PROFILED.runs
        assert merged["cycles"] == self.PROFILED.runs * self.PROFILED.cycles
        # Attribution conserves: state totals sum to an exact whole
        # number of threads' worth of campaign cycles, and every
        # site-attributed cycle appears in the state totals too.
        per_state = sum(merged["states"].values())
        threads, remainder = divmod(per_state, merged["cycles"])
        assert remainder == 0 and threads >= 2
        per_site = sum(
            count
            for per_state_cells in merged["sites"].values()
            for count in per_state_cells.values()
        )
        assert per_site <= per_state

    def test_summary_json_carries_profile_and_engine(self, capsys, tmp_path):
        path = tmp_path / "summary.json"
        code = main(
            SMOKE_CLI + ["--profile", "--summary-json", str(path)]
        )
        assert code == 0
        summary = json.loads(path.read_text())
        assert summary["config"]["profile"] is True
        assert summary["profile"]["arbitrated"]["runs"] == 4
        assert summary["engine"]["workers"] == 1
