"""Campaign-level tests: classification, determinism, and the CLI."""

import pytest

from repro.__main__ import main
from repro.faults import CampaignConfig, Classification, run_campaign
from repro.faults.campaign import CAMPAIGN_SOURCE, _diverged


class TestClassification:
    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(CampaignConfig(seed=7, runs=6, cycles=300))

    def test_every_run_classified(self, report):
        cfg = report.config
        assert len(report.outcomes) == cfg.runs * len(cfg.organizations)
        assert sum(report.by_classification().values()) == len(report.outcomes)

    def test_at_least_four_kinds_classified(self, report):
        # Acceptance floor: the campaign exercises >= 4 distinct fault
        # kinds across the two organizations.
        assert len(report.kinds_classified()) >= 4

    def test_both_organizations_covered(self, report):
        assert {o.organization for o in report.outcomes} == {
            "arbitrated",
            "event_driven",
        }

    def test_detections_happen(self, report):
        counts = report.by_classification()
        assert counts[Classification.DETECTED_RECOVERED.value] > 0

    def test_render_mentions_every_run(self, report):
        text = report.render()
        for outcome in report.outcomes:
            assert f"run {outcome.organization}#{outcome.index}:" in text
        assert "totals:" in text

    def test_abort_policy_produces_aborts(self):
        report = run_campaign(
            CampaignConfig(
                seed=7,
                runs=4,
                cycles=300,
                organizations=("arbitrated",),
                policy="abort",
            )
        )
        counts = report.by_classification()
        assert counts[Classification.DETECTED_ABORTED.value] > 0
        aborted = [
            o
            for o in report.outcomes
            if o.classification is Classification.DETECTED_ABORTED
        ]
        # Aborts carry the structured error description, not a bare hang.
        assert all(o.error for o in aborted)


class TestDeterminism:
    def test_same_config_renders_identically(self):
        config = CampaignConfig(
            seed=11, runs=3, cycles=150, organizations=("arbitrated",)
        )
        first = run_campaign(config).render()
        second = run_campaign(config).render()
        assert first == second

    def test_different_seeds_differ(self):
        base = dict(runs=3, cycles=150, organizations=("arbitrated",))
        first = run_campaign(CampaignConfig(seed=1, **base)).render()
        second = run_campaign(CampaignConfig(seed=2, **base)).render()
        assert first != second


class TestDivergence:
    def test_prefix_consistency_is_clean(self):
        golden = {"t": [(1,), (2,), (3,)]}
        assert not _diverged(golden, {"t": [(1,), (2,)]})  # delayed
        assert not _diverged(golden, {"t": [(1,), (2,), (3,)]})

    def test_any_divergent_round_is_corruption(self):
        golden = {"t": [(1,), (2,), (3,)]}
        assert _diverged(golden, {"t": [(1,), (9,)]})


class TestCli:
    def run_cli(self, capsys, *extra):
        code = main(
            [
                "faults",
                "--seed",
                "7",
                "--runs",
                "2",
                "--cycles",
                "150",
                "--organization",
                "arbitrated",
                *extra,
            ]
        )
        return code, capsys.readouterr().out

    def test_exit_zero_and_report(self, capsys):
        code, out = self.run_cli(capsys)
        assert code == 0
        assert "fault campaign" in out
        assert "totals:" in out

    def test_cli_output_is_deterministic(self, capsys):
        __, first = self.run_cli(capsys)
        __, second = self.run_cli(capsys)
        assert first == second

    def test_unknown_kind_rejected(self, capsys):
        code = main(["faults", "--kinds", "gremlin"])
        assert code == 2
        assert "unknown fault kinds" in capsys.readouterr().err

    def test_kind_filter_respected(self, capsys):
        code, out = self.run_cli(capsys, "--kinds", "producer-stall")
        assert code == 0
        for kind in ("seu", "request-drop", "deplist-corruption"):
            assert f"  {kind}:" not in out

    def test_report_file_written(self, capsys, tmp_path):
        path = tmp_path / "report.txt"
        code, out = self.run_cli(capsys, "--report", str(path))
        assert code == 0
        assert path.read_text().strip() in out

    def test_missing_source_file(self, capsys):
        code = main(["faults", "--source", "/nonexistent/x.hic"])
        assert code == 2

    def test_source_file_accepted(self, capsys, tmp_path):
        path = tmp_path / "design.hic"
        path.write_text(CAMPAIGN_SOURCE)
        code, out = self.run_cli(capsys, "--source", str(path))
        assert code == 0
        assert "totals:" in out
