"""Unit tests for the fault injector, driven over a bare kernel."""

from repro.core import ArbitratedController, MemRequest
from repro.faults import (
    DeplistCorruption,
    FaultInjector,
    ProducerStall,
    RequestDrop,
    RequestDuplicate,
    SeuBitFlip,
)
from repro.memory import BlockRam, DependencyEntry, DependencyList
from repro.sim import SimulationKernel


def make_rig(consumers=1, dn=None):
    """An arbitrated controller under a kernel with no executors, so tests
    drive traffic explicitly through pre-cycle hooks."""
    names = [f"c{i}" for i in range(consumers)]
    deplist = DependencyList(
        bram="bram0",
        entries=[DependencyEntry("d0", dn or consumers, 0, "prod", tuple(names))],
    )
    controller = ArbitratedController(
        BlockRam("bram0"), deplist, names, ["prod"]
    )
    kernel = SimulationKernel(executors={}, controllers={"bram0": controller})
    return kernel, controller


def write_req(data=1):
    return MemRequest("prod", "D", 0, True, data=data, dep_id="d0")


def read_req(client="c0"):
    return MemRequest(client, "C", 0, False, dep_id="d0")


class TestSeu:
    def test_bit_flips_at_scheduled_cycle(self):
        kernel, controller = make_rig()
        injector = FaultInjector(
            [SeuBitFlip(at_cycle=2, bram="bram0", address=3, bit=5)]
        ).attach(kernel)
        kernel.step()
        kernel.step()
        assert controller.bram.peek(3) == 0  # pre-hook of cycle 2 not yet run
        kernel.step()
        assert controller.bram.peek(3) == 32
        assert injector.log == [(2, "seu@2: flip bram0[3] bit 5")]

    def test_flip_is_an_xor(self):
        kernel, controller = make_rig()
        controller.bram.write(0, 0b100000)
        FaultInjector(
            [SeuBitFlip(at_cycle=0, bram="bram0", address=0, bit=5)]
        ).attach(kernel)
        kernel.step()
        assert controller.bram.peek(0) == 0

    def test_registered_in_kernel_context(self):
        kernel, __ = make_rig()
        injector = FaultInjector([]).attach(kernel)
        assert kernel.context["fault-injector"] is injector


class TestProducerStall:
    def test_dead_producer_never_writes(self):
        kernel, controller = make_rig()
        FaultInjector([ProducerStall(at_cycle=0, client="prod")]).attach(kernel)
        kernel.add_pre_cycle_hook(
            lambda cycle, k: controller.submit(write_req())
        )
        kernel.run(6)
        assert controller.latency_samples == []
        assert controller.blocked == []  # dropped at the tap, never pending

    def test_finite_stall_delays_the_write(self):
        kernel, controller = make_rig()
        FaultInjector(
            [ProducerStall(at_cycle=0, client="prod", duration=3)]
        ).attach(kernel)
        kernel.add_pre_cycle_hook(
            lambda cycle, k: controller.submit(write_req())
        )
        kernel.run(6)
        grants = [s.grant_cycle for s in controller.latency_samples]
        assert grants == [3]

    def test_other_clients_unaffected(self):
        kernel, controller = make_rig()
        FaultInjector([ProducerStall(at_cycle=0, client="ghost")]).attach(
            kernel
        )
        kernel.add_pre_cycle_hook(
            lambda cycle, k: controller.submit(write_req())
        )
        kernel.run(2)
        assert [s.grant_cycle for s in controller.latency_samples] == [0]


class TestRequestDrop:
    def test_drops_then_recovers(self):
        kernel, controller = make_rig()
        injector = FaultInjector(
            [RequestDrop(at_cycle=1, bram="bram0", client="c0", count=2)]
        ).attach(kernel)

        def traffic(cycle, k):
            if cycle == 0:
                controller.submit(write_req())
            elif len(controller.waits_for(port="C")) == 0:
                controller.submit(read_req("c0"))

        kernel.add_pre_cycle_hook(traffic)
        kernel.run(6)
        samples = [
            s for s in controller.latency_samples if s.port == "C"
        ]
        # Cycles 1 and 2 were dropped at the port; only the cycle-3
        # submission reaches arbitration and is granted immediately.
        assert [s.grant_cycle for s in samples] == [3]
        assert [c for c, __ in injector.log] == [1, 2]


class TestRequestDuplicate:
    def test_replay_steals_a_read_slot(self):
        kernel, controller = make_rig(consumers=2, dn=2)
        injector = FaultInjector(
            [RequestDuplicate(at_cycle=1, bram="bram0", client="c0")]
        ).attach(kernel)

        def traffic(cycle, k):
            if cycle == 0:
                controller.submit(write_req())
            elif cycle == 1:
                controller.submit(read_req("c0"))
            elif cycle == 2:
                controller.submit(read_req("c1"))

        kernel.add_pre_cycle_hook(traffic)
        kernel.run(7)
        # The captured c0 read is replayed after its legitimate grant; once
        # dn is exhausted the replay sits blocked at the guard.
        assert any(b.request.client == "c0" for b in controller.blocked)
        assert any("request-duplicate" in entry for __, entry in injector.log)


class TestDeplistCorruption:
    def test_wrong_dn_applied_at_cycle(self):
        kernel, controller = make_rig()
        FaultInjector(
            [
                DeplistCorruption(
                    at_cycle=1, bram="bram0", dep_id="d0", dependency_number=5
                )
            ]
        ).attach(kernel)
        kernel.step()
        assert controller.deplist.entry_for("d0").dependency_number == 1
        kernel.step()
        assert controller.deplist.entry_for("d0").dependency_number == 5

    def test_wrong_base_address_moves_the_guard(self):
        kernel, controller = make_rig()
        FaultInjector(
            [
                DeplistCorruption(
                    at_cycle=0, bram="bram0", dep_id="d0", base_address=17
                )
            ]
        ).attach(kernel)
        kernel.step()
        assert controller.deplist.entry_for("d0").base_address == 17

    def test_corrupt_seam_returns_original(self):
        __, controller = make_rig()
        original = controller.deplist.corrupt("d0", dependency_number=9)
        assert original == (1, 0)
        assert controller.deplist.entry_for("d0").dependency_number == 9


class TestSimulationWiring:
    def test_inject_faults_via_flow(self, pipeline_source):
        from repro.flow import build_simulation, compile_design

        sim = build_simulation(compile_design(pipeline_source))
        injector = sim.inject_faults(
            [SeuBitFlip(at_cycle=1, bram=sorted(sim.controllers)[0])]
        )
        sim.run(5)
        assert injector.log
