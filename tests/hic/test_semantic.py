"""Unit tests for hic semantic analysis."""

import pytest

from repro.hic import (
    HicNameError,
    HicSemanticError,
    HicTypeError,
    SymbolKind,
    analyze,
)


class TestScopes:
    def test_figure1_scopes(self, figure1_checked):
        scope = figure1_checked.scope("t1")
        assert {"x1", "xtmp", "x2"} <= set(scope.symbols)

    def test_shared_import_visible_in_consumer(self, figure1_checked):
        scope = figure1_checked.scope("t2")
        assert scope.symbols["x1"].kind is SymbolKind.SHARED

    def test_shared_import_keeps_producer_type(self):
        source = """
        type addr : 9;
        thread a () { addr p; int t;
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v;
          #producer{d,[a,p]}
          v = g(p);
        }
        """
        checked = analyze(source)
        assert checked.symbol("b", "p").hic_type.bit_width == 9

    def test_duplicate_variable_rejected(self):
        with pytest.raises(HicNameError):
            analyze("thread t () { int x; char x; }")

    def test_duplicate_thread_rejected(self):
        with pytest.raises(HicNameError):
            analyze("thread t () { int x; }\nthread t () { int y; }")

    def test_undeclared_variable_rejected(self):
        with pytest.raises(HicNameError):
            analyze("thread t () { int x; x = y; }")

    def test_local_decl_conflicting_with_shared_import(self):
        source = """
        thread a () { int p, t;
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v, p;
          #producer{d,[a,p]}
          v = g(p);
        }
        """
        with pytest.raises(HicNameError, match="declared locally"):
            analyze(source)

    def test_constants_visible_in_threads(self):
        source = "#constant{host, 42}\nthread t () { int x; x = host; }"
        checked = analyze(source)
        assert checked.constants["host"] == 42

    def test_assign_to_constant_rejected(self):
        source = "#constant{host, 42}\nthread t () { host = 1; }"
        with pytest.raises(HicSemanticError):
            analyze(source)

    def test_assign_to_shared_rejected(self):
        source = """
        thread a () { int p, t;
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v;
          #producer{d,[a,p]}
          v = g(p);
          p = 0;
        }
        """
        with pytest.raises(HicSemanticError, match="producer"):
            analyze(source)


class TestTypeChecking:
    def test_arithmetic_ok(self):
        analyze("thread t () { int x, y; x = y * 2 + 1; }")

    def test_message_field_read(self):
        analyze("thread t () { message m; int x; x = m.ttl + 1; }")

    def test_message_field_write(self):
        analyze("thread t () { message m; m.ttl = m.ttl - 1; }")

    def test_field_access_on_scalar_rejected(self):
        with pytest.raises(HicTypeError):
            analyze("thread t () { int x, y; x = y.ttl; }")

    def test_unknown_message_field_rejected(self):
        with pytest.raises(HicTypeError):
            analyze("thread t () { message m; int x; x = m.bogus; }")

    def test_message_to_scalar_rejected(self):
        with pytest.raises(HicTypeError):
            analyze("thread t () { message m; int x; x = m; }")

    def test_scalar_to_message_rejected(self):
        with pytest.raises(HicTypeError):
            analyze("thread t () { message m; m = 1; }")

    def test_single_message_ok(self):
        analyze("thread t () { message m; m.ttl = 64; }")

    def test_two_messages_rejected_by_in_flight_rule(self):
        with pytest.raises(HicSemanticError):
            analyze("thread a () { message m, n; m = n; }")

    def test_array_indexing(self):
        analyze("thread t () { int a[8], i, x; x = a[i]; a[i] = x + 1; }")

    def test_index_of_non_array_rejected(self):
        with pytest.raises(HicTypeError):
            analyze("thread t () { int x, y; x = y[0]; }")

    def test_bare_array_reference_rejected(self):
        with pytest.raises(HicTypeError):
            analyze("thread t () { int a[8], x; x = a; }")

    def test_whole_array_assignment_rejected(self):
        with pytest.raises(HicTypeError):
            analyze("thread t () { int a[8]; a = 1; }")

    def test_call_args_checked(self):
        with pytest.raises(HicNameError):
            analyze("thread t () { int x; x = f(nothere); }")

    def test_message_as_call_arg_rejected(self):
        with pytest.raises(HicTypeError):
            analyze("thread t () { message m; int x; x = f(m); }")

    def test_conditional_expr(self):
        analyze("thread t () { int x, y; x = y > 0 ? y : -y; }")

    def test_comparison_yields_bool_usable_in_arith(self):
        analyze("thread t () { int x, y; x = (y > 0) + 1; }")


class TestStructuralRules:
    def test_two_messages_in_flight_rejected(self):
        with pytest.raises(HicSemanticError, match="in flight"):
            analyze("thread t () { message a; message b; }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(HicSemanticError):
            analyze("thread t () { break; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(HicSemanticError):
            analyze("thread t () { continue; }")

    def test_break_inside_loop_ok(self):
        analyze("thread t () { int x; while (x) { break; } }")

    def test_receive_requires_message_var(self):
        source = "#interface{eth0, gige}\nthread t () { int x; receive(x, eth0); }"
        with pytest.raises(HicTypeError):
            analyze(source)

    def test_receive_requires_declared_interface(self):
        source = "thread t () { message m; receive(m, eth0); }"
        with pytest.raises(HicNameError, match="interface"):
            analyze(source)

    def test_receive_transmit_ok(self):
        source = (
            "#interface{eth0, gige}\n"
            "thread t () { message m; receive(m, eth0); transmit(m, eth0); }"
        )
        checked = analyze(source)
        assert checked.interfaces == {"eth0": "gige"}

    def test_duplicate_interface_rejected(self):
        source = "#interface{e, gige}\n#interface{e, gige}\nthread t () { int x; }"
        with pytest.raises(HicNameError):
            analyze(source)

    def test_duplicate_constant_rejected(self):
        source = "#constant{c, 1}\n#constant{c, 2}\nthread t () { int x; }"
        with pytest.raises(HicNameError):
            analyze(source)


class TestSharedVariables:
    def test_shared_endpoints(self, figure1_checked):
        assert figure1_checked.shared_variables() == {
            ("t1", "x1"),
            ("t2", "y1"),
            ("t3", "z1"),
        }

    def test_pipeline_dependencies(self, pipeline_checked):
        assert len(pipeline_checked.dependencies) == 2

    def test_symbol_lookup_helper(self, figure1_checked):
        symbol = figure1_checked.symbol("t1", "x1")
        assert symbol.hic_type.bit_width == 32

    def test_unknown_thread_lookup(self, figure1_checked):
        with pytest.raises(KeyError):
            figure1_checked.scope("ghost")
