"""Unit tests for the hic type system."""

import pytest

from repro.hic.types import (
    BOOL,
    CHAR,
    INT,
    MESSAGE,
    BitsType,
    MessageType,
    TypeTable,
    UnionType,
    common_type,
    is_numeric,
)


class TestBuiltinWidths:
    def test_int_is_32_bits(self):
        assert INT.bit_width == 32

    def test_char_is_8_bits(self):
        assert CHAR.bit_width == 8

    def test_bool_is_1_bit(self):
        assert BOOL.bit_width == 1

    def test_message_width_covers_all_fields(self):
        assert MESSAGE.bit_width == 160

    def test_message_field_slice(self):
        offset, width = MessageType.field_slice("dst_addr")
        assert (offset, width) == (64, 32)

    def test_message_unknown_field(self):
        with pytest.raises(KeyError):
            MessageType.field_slice("bogus")

    def test_message_field_names_nonempty(self):
        assert "ttl" in MessageType.field_names()


class TestUserTypes:
    def test_bits_type_width(self):
        assert BitsType("addr", 9).bit_width == 9

    def test_bits_type_invalid_width(self):
        with pytest.raises(ValueError):
            BitsType("bad", 0).bit_width

    def test_union_width_is_max(self):
        union = UnionType("u", (INT, CHAR, BitsType("w", 48)))
        assert union.bit_width == 48

    def test_union_of_builtin(self):
        union = UnionType("u", (CHAR,))
        assert union.bit_width == 8


class TestTypeTable:
    def test_builtins_present(self):
        table = TypeTable()
        for name in ("int", "char", "bool", "message"):
            assert name in table

    def test_declare_and_lookup(self):
        table = TypeTable()
        table.declare(BitsType("addr", 9))
        assert table.lookup("addr").bit_width == 9

    def test_duplicate_declaration_rejected(self):
        table = TypeTable()
        table.declare(BitsType("addr", 9))
        with pytest.raises(KeyError):
            table.declare(BitsType("addr", 10))

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            TypeTable().lookup("nothere")

    def test_names_includes_user_types(self):
        table = TypeTable()
        table.declare(BitsType("addr", 9))
        assert "addr" in table.names()


class TestNumericRules:
    def test_is_numeric(self):
        assert is_numeric(INT)
        assert is_numeric(CHAR)
        assert is_numeric(BOOL)
        assert is_numeric(BitsType("w", 12))
        assert not is_numeric(MESSAGE)

    def test_common_type_prefers_wider(self):
        assert common_type(CHAR, INT) is INT
        assert common_type(INT, CHAR) is INT

    def test_common_type_equal_width_prefers_left(self):
        left = BitsType("a", 32)
        assert common_type(left, INT) is left

    def test_common_type_rejects_message(self):
        with pytest.raises(TypeError):
            common_type(INT, MESSAGE)
