"""Unit tests for the hic lexer."""

import pytest

from repro.hic import HicSyntaxError, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        tokens = tokenize("x1")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "x1"

    def test_keyword_recognized(self):
        tokens = tokenize("thread")
        assert tokens[0].kind is TokenKind.KEYWORD

    def test_identifier_with_underscore(self):
        assert texts("_my_var2") == ["_my_var2"]

    def test_decimal_literal(self):
        token = tokenize("1234")[0]
        assert token.kind is TokenKind.INT
        assert token.int_value == 1234

    def test_hex_literal(self):
        assert tokenize("0xFF")[0].int_value == 255

    def test_binary_literal(self):
        assert tokenize("0b1010")[0].int_value == 10

    def test_octal_literal(self):
        assert tokenize("0o17")[0].int_value == 15

    def test_char_literal(self):
        token = tokenize("'a'")[0]
        assert token.kind is TokenKind.CHAR
        assert token.char_value == ord("a")

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].char_value == ord("\n")

    def test_hash_token(self):
        assert kinds("#")[0] is TokenKind.HASH


class TestOperators:
    @pytest.mark.parametrize(
        "op",
        ["==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "<<=", ">>="],
    )
    def test_multichar_operator(self, op):
        tokens = tokenize(op)
        assert tokens[0].text == op
        assert tokens[0].kind is TokenKind.PUNCT

    def test_maximal_munch(self):
        # "<<=" must lex as one token, not "<<" then "=".
        assert texts("a <<= 1") == ["a", "<<=", "1"]

    def test_adjacent_singles(self):
        assert texts("a+-b") == ["a", "+", "-", "b"]


class TestTrivia:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(HicSyntaxError):
            tokenize("/* never closed")

    def test_locations_track_lines(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(HicSyntaxError):
            tokenize("a @ b")

    def test_unterminated_char(self):
        with pytest.raises(HicSyntaxError):
            tokenize("'a")

    def test_empty_char(self):
        with pytest.raises(HicSyntaxError):
            tokenize("''")

    def test_bad_escape(self):
        with pytest.raises(HicSyntaxError):
            tokenize(r"'\q'")

    def test_malformed_hex(self):
        with pytest.raises(HicSyntaxError):
            tokenize("0xZZ")


class TestFullPrograms:
    def test_figure1_tokenizes(self, figure1_source):
        tokens = tokenize(figure1_source)
        assert tokens[-1].kind is TokenKind.EOF
        thread_count = sum(1 for t in tokens if t.text == "thread")
        assert thread_count == 3

    def test_pragma_sequence(self):
        toks = texts("#consumer{mt1,[t2,y1]}")
        assert toks == ["#", "consumer", "{", "mt1", ",", "[", "t2", ",", "y1", "]", "}"]
