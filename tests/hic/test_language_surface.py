"""Additional hic language-surface tests: unions, literals, idioms."""

import pytest

from repro.flow import build_simulation, compile_design
from repro.hic import analyze, parse


class TestUnionTypes:
    def test_union_variable_in_program(self):
        source = """
        type halfword : 16;
        type cell = union(int, halfword);
        thread t () { cell v; int x; v = 5; x = v + 1; }
        """
        checked = analyze(source)
        assert checked.symbol("t", "v").hic_type.bit_width == 32

    def test_union_simulates_as_widest_member(self):
        source = """
        type halfword : 16;
        type cell = union(int, halfword);
        thread t () { cell v; int x; v = 70000; x = v; }
        """
        design = compile_design(source)
        sim = build_simulation(design)
        sim.run(20)
        assert sim.executors["t"].env["x"] == 70000

    def test_union_of_unions(self):
        source = """
        type a : 4;
        type b = union(a, char);
        type c = union(b, int);
        thread t () { c v; v = 1; }
        """
        checked = analyze(source)
        assert checked.symbol("t", "v").hic_type.bit_width == 32


class TestNarrowTypes:
    def test_narrow_type_storage(self):
        source = "type nibble : 4;\nthread t () { nibble n; n = 3; }"
        checked = analyze(source)
        assert checked.symbol("t", "n").storage_bits == 4

    def test_narrow_type_in_arithmetic_widens(self):
        source = (
            "type nibble : 4;\n"
            "thread t () { nibble n; int x; n = 3; x = n + 100; }"
        )
        design = compile_design(source)
        sim = build_simulation(design)
        sim.run(20)
        assert sim.executors["t"].env["x"] == 103


class TestLiteralForms:
    @pytest.mark.parametrize(
        "literal,expected",
        [("0x10", 16), ("0b101", 5), ("0o17", 15), ("'A'", 65)],
    )
    def test_literal_values_through_simulation(self, literal, expected):
        design = compile_design(f"thread t () {{ int x; x = {literal}; }}")
        sim = build_simulation(design)
        sim.run(10)
        assert sim.executors["t"].env["x"] == expected

    def test_hex_in_case_labels(self):
        source = (
            "thread t () { int s, out; s = 0x1F; "
            "case (s) { of 0x1F: { out = 1; } default: { out = 2; } } }"
        )
        design = compile_design(source)
        sim = build_simulation(design)
        sim.run(20)
        assert sim.executors["t"].env["out"] == 1


class TestThreadParams:
    def test_params_visible_and_default_zero(self):
        source = "thread t (offset) { int x; x = offset + 5; }"
        design = compile_design(source)
        sim = build_simulation(design)
        sim.run(10)
        assert sim.executors["t"].env["x"] == 5

    def test_params_settable_before_run(self):
        source = "thread t (offset) { int x; x = offset + 5; }"
        design = compile_design(source)
        sim = build_simulation(design)
        sim.executors["t"].env["offset"] = 100
        sim.run(10)
        assert sim.executors["t"].env["x"] == 105


class TestDeclarationsInNestedBlocks:
    def test_decl_inside_if_is_thread_scoped(self):
        source = (
            "thread t () { int c; if (c == 0) { int inner; inner = 7; } "
            "c = 1; }"
        )
        checked = analyze(source)
        assert "inner" in checked.scope("t").symbols

    def test_nested_decl_simulates(self):
        source = (
            "thread t () { int c, out; "
            "if (c == 0) { int inner; inner = 7; out = inner; } c = 1; }"
        )
        design = compile_design(source)
        sim = build_simulation(design)
        sim.run(30)
        assert sim.executors["t"].env["out"] == 7
