"""Unit tests for pragma inference (the paper's use-def alternative)."""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.hic import analyze, parse
from repro.hic.autopragma import apply_inferred_pragmas
from repro.sim import default_intrinsic

#: Figure 1 with the pragmas stripped: inference must recover them.
FIGURE1_BARE = """
thread t1 () {
  int x1, xtmp, x2;
  x1 = f(xtmp, x2);
}
thread t2 () {
  int y1, y2;
  y1 = g(x1, y2);
}
thread t3 () {
  int z1, z2;
  z1 = h(x1, z2);
}
"""


class TestInference:
    def test_recovers_figure1_dependency(self):
        program = parse(FIGURE1_BARE)
        inferred = apply_inferred_pragmas(program)
        assert len(inferred) == 1
        dep = inferred[0]
        assert dep.variable == "x1"
        assert dep.producer_thread == "t1"
        assert dep.consumer_threads == ("t2", "t3")

    def test_injected_pragmas_pass_full_checking(self):
        checked = analyze(FIGURE1_BARE, infer_pragmas=True)
        assert len(checked.dependencies) == 1
        dep = checked.dependencies[0]
        assert dep.dep_id == "auto_x1"
        assert dep.dependency_number == 2

    def test_inferred_design_simulates_like_explicit(self, figure1_source):
        explicit = compile_design(figure1_source)
        inferred = compile_design(FIGURE1_BARE, infer_pragmas=True)
        sims = []
        for design in (explicit, inferred):
            sim = build_simulation(design)
            sim.run(300)
            sims.append(
                (sim.executors["t2"].env["y1"], sim.executors["t3"].env["z1"])
            )
        assert sims[0] == sims[1]
        f, g = default_intrinsic("f"), default_intrinsic("g")
        assert sims[1][0] == g(f(0, 0), 0)

    def test_explicit_pragmas_suppress_inference(self, figure1_source):
        program = parse(figure1_source)
        inferred = apply_inferred_pragmas(program)
        assert inferred == []

    def test_private_variables_not_inferred(self):
        program = parse("thread t () { int a, b; a = 1; b = a; }")
        assert apply_inferred_pragmas(program) == []

    def test_multi_writer_skipped(self):
        source = """
        thread a () { int s, q; s = 1; s = q; }
        thread b () { int r; r = g(s); }
        """
        program = parse(source)
        assert apply_inferred_pragmas(program) == []

    def test_ambiguous_consumer_skipped(self):
        source = """
        thread a () { int s, q; s = f(q); }
        thread b () { int r, u; r = g(s); u = g(s); }
        """
        program = parse(source)
        assert apply_inferred_pragmas(program) == []

    def test_locally_shadowed_name_skipped(self):
        source = """
        thread a () { int s, q; s = f(q); }
        thread b () { int s, r; s = 2; r = g(s); }
        """
        program = parse(source)
        # b declares (and writes) its own s: two writers -> no inference.
        assert apply_inferred_pragmas(program) == []

    def test_event_driven_with_inference(self):
        design = compile_design(
            FIGURE1_BARE,
            infer_pragmas=True,
            organization=Organization.EVENT_DRIVEN,
        )
        sim = build_simulation(design)
        sim.run(300)
        assert sim.executors["t2"].stats.rounds_completed > 0

    def test_pipeline_inference(self):
        source = """
        thread s1 () { int a, raw; a = f(raw); }
        thread s2 () { int b; b = g(a); }
        """
        checked = analyze(source, infer_pragmas=True)
        assert [d.dep_id for d in checked.dependencies] == ["auto_a"]
