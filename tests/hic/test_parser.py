"""Unit tests for the hic parser."""

import pytest

from repro.hic import HicSyntaxError, parse, parse_with_types
from repro.hic import ast
from repro.hic.types import BitsType, UnionType


def single_thread(source):
    program = parse(source)
    assert len(program.threads) == 1
    return program.threads[0]


class TestTopLevel:
    def test_empty_program(self):
        assert parse("").threads == []

    def test_figure1_thread_names(self, figure1_source):
        program = parse(figure1_source)
        assert program.thread_names() == ["t1", "t2", "t3"]

    def test_thread_params(self):
        thread = single_thread("thread t (a, b) { int x; }")
        assert thread.params == ["a", "b"]

    def test_interface_pragma(self):
        program = parse("#interface{eth0, gige}\nthread t () { int x; }")
        assert program.interfaces[0].name == "eth0"
        assert program.interfaces[0].kind == "gige"

    def test_constant_pragma(self):
        program = parse("#constant{host, 0x0A000001}\nthread t () { int x; }")
        assert program.constants[0].value == 0x0A000001

    def test_negative_constant(self):
        program = parse("#constant{offset, -4}\nthread t () { int x; }")
        assert program.constants[0].value == -4

    def test_junk_at_top_level_rejected(self):
        with pytest.raises(HicSyntaxError):
            parse("banana")

    def test_unknown_top_pragma_rejected(self):
        with pytest.raises(HicSyntaxError):
            parse("#producer{d,[t,v]}\nthread t () { int v; }")


class TestTypeDecls:
    def test_bits_type(self):
        __, types = parse_with_types("type nibble : 4;")
        declared = types.lookup("nibble")
        assert isinstance(declared, BitsType)
        assert declared.bit_width == 4

    def test_union_type(self):
        source = "type word : 16;\ntype mixed = union(int, word);"
        __, types = parse_with_types(source)
        declared = types.lookup("mixed")
        assert isinstance(declared, UnionType)
        assert declared.bit_width == 32  # max(32, 16)

    def test_user_type_usable_in_decl(self):
        source = "type addr : 9;\nthread t () { addr a; }"
        program = parse(source)
        decl = program.threads[0].declarations()[0]
        assert decl.var_type.bit_width == 9

    def test_duplicate_type_rejected(self):
        with pytest.raises(HicSyntaxError):
            parse("type a : 4;\ntype a : 8;")

    def test_unknown_type_in_union_rejected(self):
        with pytest.raises(HicSyntaxError):
            parse("type u = union(int, nothere);")


class TestDeclarations:
    def test_multi_name_decl(self):
        thread = single_thread("thread t () { int x1, xtmp, x2; }")
        assert thread.declarations()[0].names == ["x1", "xtmp", "x2"]

    def test_array_decl(self):
        thread = single_thread("thread t () { int table[256]; }")
        decl = thread.declarations()[0]
        assert decl.declarators() == [("table", 256)]

    def test_mixed_scalar_and_array_declarators(self):
        thread = single_thread("thread t () { int a[8], i, x; }")
        decl = thread.declarations()[0]
        assert decl.declarators() == [("a", 8), ("i", 0), ("x", 0)]

    def test_zero_size_array_rejected(self):
        with pytest.raises(HicSyntaxError):
            parse("thread t () { int table[0]; }")

    def test_message_decl(self):
        thread = single_thread("thread t () { message m; }")
        assert thread.declarations()[0].var_type.name == "message"


class TestStatements:
    def test_assignment(self):
        thread = single_thread("thread t () { int x; x = 1; }")
        stmt = thread.statements()[0]
        assert isinstance(stmt, ast.Assign)
        assert stmt.op == "="

    def test_compound_assignment(self):
        thread = single_thread("thread t () { int x; x += 2; }")
        assert thread.statements()[0].op == "+="

    def test_if_else(self):
        thread = single_thread(
            "thread t () { int x; if (x > 0) { x = 1; } else { x = 2; } }"
        )
        stmt = thread.statements()[0]
        assert isinstance(stmt, ast.If)
        assert stmt.else_body is not None

    def test_else_if_chain(self):
        thread = single_thread(
            "thread t () { int x; "
            "if (x == 1) { x = 0; } else if (x == 2) { x = 1; } else { x = 3; } }"
        )
        outer = thread.statements()[0]
        nested = outer.else_body.statements[0]
        assert isinstance(nested, ast.If)

    def test_case_statement(self):
        thread = single_thread(
            "thread t () { int s; case (s) { of 0: { s = 1; } of 1, 2: { s = 0; } "
            "default: { s = 3; } } }"
        )
        stmt = thread.statements()[0]
        assert isinstance(stmt, ast.Case)
        assert len(stmt.arms) == 2
        assert len(stmt.arms[1].values) == 2
        assert stmt.default is not None

    def test_empty_case_rejected(self):
        with pytest.raises(HicSyntaxError):
            parse("thread t () { int s; case (s) { } }")

    def test_double_default_rejected(self):
        with pytest.raises(HicSyntaxError):
            parse(
                "thread t () { int s; case (s) { default: { } default: { } } }"
            )

    def test_while_loop(self):
        thread = single_thread("thread t () { int x; while (x < 4) { x = x + 1; } }")
        assert isinstance(thread.statements()[0], ast.While)

    def test_for_loop(self):
        thread = single_thread(
            "thread t () { int i, acc; for (i = 0; i < 8; i = i + 1) { acc += i; } }"
        )
        stmt = thread.statements()[0]
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None
        assert stmt.step is not None

    def test_for_loop_empty_header(self):
        thread = single_thread("thread t () { int i; for (;;) { break; } }")
        stmt = thread.statements()[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_receive_transmit(self):
        source = (
            "#interface{eth0, gige}\n"
            "thread t () { message m; receive(m, eth0); transmit(m, eth0); }"
        )
        thread = parse(source).threads[0]
        stmts = thread.statements()
        assert isinstance(stmts[0], ast.Receive)
        assert isinstance(stmts[1], ast.Transmit)
        assert stmts[0].interface == "eth0"

    def test_break_continue_return(self):
        thread = single_thread(
            "thread t () { int x; while (1) { if (x) { break; } continue; } return; }"
        )
        assert isinstance(thread.statements()[-1], ast.Return)


class TestExpressions:
    def expr_of(self, text):
        thread = single_thread(f"thread t () {{ int x, y, z; x = {text}; }}")
        return thread.statements()[0].value

    def test_precedence_mul_over_add(self):
        expr = self.expr_of("y + z * 2")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = self.expr_of("(y + z) * 2")
        assert expr.op == "*"

    def test_comparison_precedence(self):
        expr = self.expr_of("y + 1 < z")
        assert expr.op == "<"

    def test_logical_operators(self):
        expr = self.expr_of("y && z || y")
        assert expr.op == "||"

    def test_unary(self):
        expr = self.expr_of("-y")
        assert isinstance(expr, ast.Unary)
        assert expr.op == "-"

    def test_ternary(self):
        expr = self.expr_of("y ? 1 : 2")
        assert isinstance(expr, ast.Conditional)

    def test_call_with_args(self):
        expr = self.expr_of("f(y, z + 1)")
        assert isinstance(expr, ast.Call)
        assert expr.callee == "f"
        assert len(expr.args) == 2

    def test_field_access(self):
        thread = single_thread("thread t () { message m; int x; x = m.ttl; }")
        expr = thread.statements()[0].value
        assert isinstance(expr, ast.FieldAccess)
        assert expr.field_name == "ttl"

    def test_array_index(self):
        thread = single_thread("thread t () { int a[4], x; x = a[x + 1]; }")
        expr = thread.statements()[0].value
        assert isinstance(expr, ast.Index)

    def test_assignment_to_field(self):
        thread = single_thread("thread t () { message m; m.ttl = 64; }")
        target = thread.statements()[0].target
        assert isinstance(target, ast.FieldAccess)

    def test_left_associativity(self):
        expr = self.expr_of("y - z - 1")
        # Must parse as (y - z) - 1.
        assert expr.op == "-"
        assert expr.left.op == "-"


class TestPragmas:
    def test_consumer_pragma_attaches_to_assignment(self, figure1_source):
        program = parse(figure1_source)
        t1 = program.thread("t1")
        stmt = t1.statements()[0]
        assert len(stmt.pragmas) == 1
        pragma = stmt.pragmas[0]
        assert isinstance(pragma, ast.ConsumerPragma)
        assert pragma.dep_id == "mt1"
        assert pragma.links == [
            ast.DependencyLink("t2", "y1"),
            ast.DependencyLink("t3", "z1"),
        ]

    def test_producer_pragma(self, figure1_source):
        program = parse(figure1_source)
        stmt = program.thread("t2").statements()[0]
        assert isinstance(stmt.pragmas[0], ast.ProducerPragma)

    def test_pragma_before_non_assignment_rejected(self):
        with pytest.raises(HicSyntaxError):
            parse(
                "thread t () { int x; #producer{d,[t,x]}\n while (x) { x = 0; } }"
            )

    def test_dangling_pragma_rejected(self):
        with pytest.raises(HicSyntaxError):
            parse("thread t () { int x; x = 1; #producer{d,[t,x]} }")

    def test_pragma_without_links_rejected(self):
        with pytest.raises(HicSyntaxError):
            parse("thread t () { int x; #producer{d}\n x = 1; }")

    def test_multiple_pragmas_on_one_statement(self):
        source = (
            "thread a () { int p, q; "
            "#consumer{d1,[b,r]}\n#consumer{d2,[b,s]}\n p = f(q); }"
            "thread b () { int r, s; "
            "#producer{d1,[a,p]}\n r = g(p); "
            "#producer{d2,[a,p]}\n s = g(p); }"
        )
        program = parse(source)
        stmt = program.thread("a").statements()[0]
        assert len(stmt.pragmas) == 2


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "thread t () { int x; x = ; }",
            "thread t () { int x; x = 1 }",
            "thread t () { int x; if x { } }",
            "thread t () { int x }",
            "thread t ( { }",
            "thread t () { 1 = x; }",
            "thread t () {",
        ],
    )
    def test_malformed_source_raises(self, source):
        with pytest.raises(HicSyntaxError):
            parse(source)

    def test_error_carries_location(self):
        with pytest.raises(HicSyntaxError) as err:
            parse("thread t () {\n  int x;\n  x = ;\n}")
        assert err.value.location.line == 3
