"""Unit tests for producer/consumer pragma resolution."""

import pytest

from repro.hic import HicPragmaError, parse, resolve_dependencies
from repro.hic.pragmas import ConsumerRef
from tests.conftest import make_fanout_source


def resolve(source):
    return resolve_dependencies(parse(source))


class TestFigure1:
    def test_single_dependency(self, figure1_source):
        deps = resolve(figure1_source)
        assert len(deps) == 1

    def test_dependency_fields(self, figure1_source):
        dep = resolve(figure1_source)[0]
        assert dep.dep_id == "mt1"
        assert dep.producer_thread == "t1"
        assert dep.producer_var == "x1"
        assert dep.consumers == (
            ConsumerRef("t2", "y1"),
            ConsumerRef("t3", "z1"),
        )

    def test_dependency_number_matches_paper(self, figure1_source):
        # Figure 1 has two consumers, so dn == 2.
        assert resolve(figure1_source)[0].dependency_number == 2

    def test_consumer_threads(self, figure1_source):
        assert resolve(figure1_source)[0].consumer_threads() == ("t2", "t3")


class TestFanoutScenarios:
    @pytest.mark.parametrize("consumers", [2, 4, 8])
    def test_paper_scenarios_resolve(self, consumers):
        deps = resolve(make_fanout_source(consumers))
        assert len(deps) == 1
        assert deps[0].dependency_number == consumers


class TestValidation:
    def test_missing_consumer_statement(self):
        source = """
        thread a () { int p, t;
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v; v = 0; }
        """
        with pytest.raises(HicPragmaError, match="no consuming"):
            resolve(source)

    def test_missing_producer_statement(self):
        source = """
        thread a () { int p; p = 0; }
        thread b () { int v;
          #producer{d,[a,p]}
          v = g(p);
        }
        """
        with pytest.raises(HicPragmaError, match="no producing"):
            resolve(source)

    def test_unknown_thread_in_link(self):
        source = """
        thread a () { int p, t;
          #consumer{d,[ghost,v]}
          p = f(t);
        }
        """
        with pytest.raises(HicPragmaError, match="unknown thread"):
            resolve(source)

    def test_mismatched_producer_link(self):
        source = """
        thread a () { int p, q, t;
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v;
          #producer{d,[a,q]}
          v = g(q);
        }
        """
        with pytest.raises(HicPragmaError, match="names"):
            resolve(source)

    def test_consumer_must_read_produced_var(self):
        source = """
        thread a () { int p, t;
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v, w;
          #producer{d,[a,p]}
          v = g(w);
        }
        """
        with pytest.raises(HicPragmaError, match="does not read"):
            resolve(source)

    def test_duplicate_producer_for_dep_id(self):
        source = """
        thread a () { int p, t;
          #consumer{d,[b,v]}
          p = f(t);
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v;
          #producer{d,[a,p]}
          v = g(p);
        }
        """
        with pytest.raises(HicPragmaError, match="more than one producing"):
            resolve(source)

    def test_undeclared_consumer_endpoint(self):
        source = """
        thread a () { int p, t;
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v, w;
          #producer{d,[a,p]}
          v = g(p);
          #producer{d,[a,p]}
          w = g(p);
        }
        """
        with pytest.raises(HicPragmaError, match="does not declare"):
            resolve(source)

    def test_producer_pragma_with_two_links_rejected(self):
        source = """
        thread a () { int p, t;
          #consumer{d,[b,v]}
          p = f(t);
        }
        thread b () { int v;
          #producer{d,[a,p],[a,p]}
          v = g(p);
        }
        """
        with pytest.raises(HicPragmaError, match="exactly one"):
            resolve(source)


class TestMultipleDependencies:
    def test_two_independent_dependencies(self, pipeline_source):
        deps = resolve(pipeline_source)
        assert sorted(d.dep_id for d in deps) == ["d1", "d2"]

    def test_results_sorted_by_dep_id(self, pipeline_source):
        deps = resolve(pipeline_source)
        assert [d.dep_id for d in deps] == sorted(d.dep_id for d in deps)

    def test_same_variable_two_dep_ids(self):
        # Multiple dependencies on the same variable are distinguished by id,
        # as the paper prescribes ("used to identify multiple dependencies on
        # same variable in threads").
        source = """
        thread a () { int p, t;
          #consumer{d1,[b,v]}
          p = f(t);
          #consumer{d2,[c,w]}
          p = f(t);
        }
        thread b () { int v;
          #producer{d1,[a,p]}
          v = g(p);
        }
        thread c () { int w;
          #producer{d2,[a,p]}
          w = g(p);
        }
        """
        deps = resolve(source)
        assert len(deps) == 2
        assert all(d.producer_var == "p" for d in deps)
