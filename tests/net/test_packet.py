"""Unit tests for the IPv4 packet model."""

import pytest

from repro.net import Ipv4Packet, format_ip, ip


class TestAddressHelpers:
    def test_ip_packing(self):
        assert ip(10, 0, 0, 1) == 0x0A000001
        assert ip(255, 255, 255, 255) == 0xFFFFFFFF

    def test_ip_range_check(self):
        with pytest.raises(ValueError):
            ip(256, 0, 0, 0)

    def test_format_roundtrip(self):
        assert format_ip(ip(192, 168, 1, 7)) == "192.168.1.7"


class TestPacket:
    def make(self, **kwargs):
        defaults = dict(src_addr=ip(192, 168, 0, 1), dst_addr=ip(10, 1, 2, 3))
        defaults.update(kwargs)
        return Ipv4Packet(**defaults)

    def test_checksum_roundtrip(self):
        packet = self.make().with_checksum()
        assert packet.checksum_ok

    def test_checksum_detects_corruption(self):
        packet = self.make().with_checksum()
        from dataclasses import replace

        corrupted = replace(packet, ttl=packet.ttl - 1)
        assert not corrupted.checksum_ok

    def test_checksum_changes_with_address(self):
        a = self.make(dst_addr=ip(10, 0, 0, 1)).compute_checksum()
        b = self.make(dst_addr=ip(10, 0, 0, 2)).compute_checksum()
        assert a != b

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            self.make(ttl=300)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            self.make(length=8)

    def test_forwarded_decrements_ttl_and_fixes_checksum(self):
        packet = self.make(ttl=10).with_checksum()
        hopped = packet.forwarded(egress_port=3)
        assert hopped.ttl == 9
        assert hopped.port_out == 3
        assert hopped.checksum_ok

    def test_forward_expired_rejected(self):
        with pytest.raises(ValueError):
            self.make(ttl=0).forwarded(1)

    def test_expired_property(self):
        assert self.make(ttl=1).expired
        assert not self.make(ttl=2).expired


class TestMessageConversion:
    def test_roundtrip(self):
        packet = Ipv4Packet(
            src_addr=ip(1, 2, 3, 4),
            dst_addr=ip(5, 6, 7, 8),
            ttl=12,
            payload=777,
        ).with_checksum()
        assert Ipv4Packet.from_message(packet.to_message()) == packet

    def test_message_has_all_fields(self):
        from repro.hic.types import MESSAGE_FIELDS

        message = Ipv4Packet(src_addr=1, dst_addr=2).to_message()
        assert set(message) == set(MESSAGE_FIELDS)

    def test_from_empty_message_defaults(self):
        packet = Ipv4Packet.from_message({})
        assert packet.ttl == 64
        assert packet.length == 64


class TestIncrementalChecksum:
    def test_rfc1624_matches_full_recompute(self):
        packet = Ipv4Packet(
            src_addr=ip(192, 168, 0, 1), dst_addr=ip(10, 1, 2, 3), ttl=17
        ).with_checksum()
        incremental = Ipv4Packet.ttl_checksum_update(
            packet.checksum, packet.ttl, packet.protocol
        )
        from dataclasses import replace

        full = replace(packet, ttl=packet.ttl - 1).compute_checksum()
        assert incremental == full

    def test_rfc1624_over_many_ttls(self):
        for ttl in (1, 2, 63, 64, 128, 255):
            packet = Ipv4Packet(
                src_addr=ip(1, 2, 3, 4), dst_addr=ip(5, 6, 7, 8), ttl=ttl
            ).with_checksum()
            hopped = packet.forwarded(egress_port=0)
            incremental = Ipv4Packet.ttl_checksum_update(
                packet.checksum, packet.ttl, packet.protocol
            )
            assert incremental == hopped.checksum

    def test_generic_update_word_change(self):
        packet = Ipv4Packet(
            src_addr=ip(1, 1, 1, 1), dst_addr=ip(2, 2, 2, 2), length=100
        ).with_checksum()
        from dataclasses import replace

        new = replace(packet, length=200)
        incremental = Ipv4Packet.incremental_checksum_update(
            packet.checksum, 100, 200
        )
        assert incremental == new.compute_checksum()
