"""LPM table edge cases: default routes, host routes, overlap resolution."""

import pytest

from repro.net.lpm import LpmTable, _mask
from repro.net.packet import ip


class TestDefaultRoute:
    def test_slash_zero_matches_everything(self):
        table = LpmTable(default_port=9)
        table.add_route(0, 0, 3)
        assert table.lookup(ip(10, 0, 0, 1)) == 3
        assert table.lookup(ip(255, 255, 255, 255)) == 3
        assert table.lookup(0) == 3

    def test_slash_zero_prefix_is_masked_away(self):
        table = LpmTable()
        route = table.add_route(ip(10, 1, 2, 3), 0, 7)
        assert route.prefix == 0
        assert table.lookup(ip(192, 168, 0, 1)) == 7

    def test_default_port_without_any_route(self):
        table = LpmTable(default_port=5)
        assert table.lookup(ip(1, 2, 3, 4)) == 5
        assert table.lookup_route(ip(1, 2, 3, 4)) is None

    def test_slash_zero_loses_to_anything_longer(self):
        table = LpmTable()
        table.add_route(0, 0, 1)
        table.add_route(ip(10, 0, 0, 0), 8, 2)
        assert table.lookup(ip(10, 9, 9, 9)) == 2
        assert table.lookup(ip(11, 0, 0, 1)) == 1


class TestHostRoute:
    def test_slash_32_matches_exactly_one_address(self):
        table = LpmTable(default_port=0)
        host = ip(10, 0, 0, 42)
        table.add_route(host, 32, 6)
        assert table.lookup(host) == 6
        assert table.lookup(host + 1) == 0
        assert table.lookup(host - 1) == 0

    def test_slash_32_wins_over_every_shorter_prefix(self):
        table = LpmTable()
        host = ip(10, 0, 0, 42)
        table.add_route(ip(10, 0, 0, 0), 8, 1)
        table.add_route(ip(10, 0, 0, 0), 24, 2)
        table.add_route(host, 32, 3)
        assert table.lookup(host) == 3
        assert table.lookup(ip(10, 0, 0, 41)) == 2

    def test_slash_32_mask_is_all_ones(self):
        assert _mask(32) == 0xFFFFFFFF
        assert _mask(0) == 0


class TestOverlappingPrefixes:
    def test_longest_match_wins_regardless_of_insert_order(self):
        ordered = LpmTable()
        ordered.add_route(ip(10, 0, 0, 0), 8, 1)
        ordered.add_route(ip(10, 1, 0, 0), 16, 2)
        ordered.add_route(ip(10, 1, 1, 0), 24, 3)

        reversed_table = LpmTable()
        reversed_table.add_route(ip(10, 1, 1, 0), 24, 3)
        reversed_table.add_route(ip(10, 1, 0, 0), 16, 2)
        reversed_table.add_route(ip(10, 0, 0, 0), 8, 1)

        for table in (ordered, reversed_table):
            assert table.lookup(ip(10, 1, 1, 9)) == 3
            assert table.lookup(ip(10, 1, 2, 9)) == 2
            assert table.lookup(ip(10, 2, 0, 9)) == 1

    def test_removing_the_longest_falls_back_to_the_next(self):
        table = LpmTable(default_port=0)
        table.add_route(ip(10, 0, 0, 0), 8, 1)
        table.add_route(ip(10, 1, 0, 0), 16, 2)
        dst = ip(10, 1, 0, 5)
        assert table.lookup(dst) == 2
        table.remove_route(ip(10, 1, 0, 0), 16)
        assert table.lookup(dst) == 1
        table.remove_route(ip(10, 0, 0, 0), 8)
        assert table.lookup(dst) == 0

    def test_routes_listed_longest_first(self):
        table = LpmTable()
        table.add_route(ip(10, 0, 0, 0), 8, 1)
        table.add_route(ip(10, 0, 0, 42), 32, 3)
        table.add_route(ip(10, 1, 0, 0), 16, 2)
        assert [r.prefix_len for r in table.routes()] == [32, 16, 8]

    def test_same_prefix_same_length_is_replaced(self):
        table = LpmTable()
        table.add_route(ip(10, 0, 0, 0), 16, 1)
        table.add_route(ip(10, 0, 255, 255), 16, 4)  # masks to the same /16
        assert len(table) == 1
        assert table.lookup(ip(10, 0, 3, 3)) == 4


class TestValidation:
    def test_out_of_range_prefix_lengths(self):
        table = LpmTable()
        with pytest.raises(ValueError):
            table.add_route(0, 33, 1)
        with pytest.raises(ValueError):
            table.add_route(0, -1, 1)

    def test_remove_missing_route_raises(self):
        table = LpmTable()
        with pytest.raises(KeyError):
            table.remove_route(ip(10, 0, 0, 0), 8)
