"""Unit tests for the IP-forwarding reference application."""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.hic import analyze
from repro.net import (
    BernoulliTraffic,
    CORE_FORWARDING_SLICES,
    APP_TOTAL_SLICES,
    demo_table,
    forwarding_functions,
    forwarding_source,
    ip,
    multi_pair_source,
)


class TestSourceGeneration:
    @pytest.mark.parametrize("consumers", [1, 2, 4, 8])
    def test_source_analyzes_clean(self, consumers):
        checked = analyze(forwarding_source(consumers))
        assert len(checked.dependencies) == 1
        assert checked.dependencies[0].dependency_number == consumers

    def test_io_threads_present(self):
        checked = analyze(forwarding_source(2))
        assert checked.interfaces == {"eth_in": "gige", "eth_out": "gige"}

    def test_no_io_variant(self):
        checked = analyze(forwarding_source(2, with_io=False))
        assert checked.interfaces == {}

    def test_invalid_consumer_count(self):
        with pytest.raises(ValueError):
            forwarding_source(0)

    def test_paper_area_constants(self):
        assert CORE_FORWARDING_SLICES == 1000
        assert APP_TOTAL_SLICES == 5430

    def test_multi_pair_source_analyzes(self):
        checked = analyze(multi_pair_source(3, consumers_per_pair=2))
        assert len(checked.dependencies) == 3
        assert all(d.dependency_number == 2 for d in checked.dependencies)

    def test_multi_pair_invalid(self):
        with pytest.raises(ValueError):
            multi_pair_source(0)


class TestForwardingExecution:
    def run_forwarder(self, consumers=2, organization=Organization.ARBITRATED,
                      cycles=1500, rate=0.05):
        design = compile_design(
            forwarding_source(consumers), organization=organization
        )
        table = demo_table()
        sim = build_simulation(design, functions=forwarding_functions(table))
        gen = BernoulliTraffic(rate=rate, seed=13)
        hook = gen.attach(sim.rx["eth_in"])
        sim.kernel.add_pre_cycle_hook(hook)
        sim.run(cycles)
        return sim, hook

    def test_packets_forwarded(self):
        sim, hook = self.run_forwarder()
        assert sim.tx["eth_out"].count > 0
        # Conservation: transmitted <= injected.
        assert sim.tx["eth_out"].count <= hook.injected

    def test_ttl_decremented_on_egress(self):
        sim, __ = self.run_forwarder()
        for __cycle, message in sim.tx["eth_out"].messages:
            assert message["ttl"] == 63  # generator emits ttl=64

    def test_every_consumer_observes_every_decision(self):
        sim, __ = self.run_forwarder(consumers=4, cycles=2000)
        rounds = [
            sim.executors[f"egress{i}"].stats.rounds_completed
            for i in range(4)
        ]
        # All egress threads consume the same stream of decisions.
        assert max(rounds) - min(rounds) <= 1
        assert min(rounds) > 0

    def test_event_driven_forwarder_works_too(self):
        sim, __ = self.run_forwarder(organization=Organization.EVENT_DRIVEN)
        assert sim.tx["eth_out"].count > 0

    def test_lookup_decision_reaches_consumers(self):
        # Single known destination: the decision must equal the route port.
        design = compile_design(forwarding_source(2))
        table = demo_table()
        sim = build_simulation(design, functions=forwarding_functions(table))
        dst = ip(10, 2, 0, 5)
        sim.inject("eth_in", {"dst_addr": dst, "ttl": 64, "length": 64})
        sim.run(200)
        expected_port = table.lookup(dst)
        assert sim.executors["egress0"].env["d0"] == expected_port

    def test_expired_packet_not_forwarded(self):
        design = compile_design(forwarding_source(2))
        sim = build_simulation(design, functions=forwarding_functions())
        sim.inject("eth_in", {"dst_addr": 1, "ttl": 1, "length": 64})
        sim.run(200)
        assert sim.tx["eth_out"].count == 0


class TestChecksumOnEgress:
    def test_forwarded_packets_have_valid_checksums(self):
        from repro.net import Ipv4Packet

        design = compile_design(forwarding_source(2))
        table = demo_table()
        sim = build_simulation(design, functions=forwarding_functions(table))
        gen = BernoulliTraffic(rate=0.05, seed=21)
        sim.kernel.add_pre_cycle_hook(gen.attach(sim.rx["eth_in"]))
        sim.run(1500)
        assert sim.tx["eth_out"].count > 0
        for __, message in sim.tx["eth_out"].messages:
            assert Ipv4Packet.from_message(message).checksum_ok
