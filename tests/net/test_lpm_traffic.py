"""Unit tests for the LPM table and traffic generators."""

import pytest

from repro.net import (
    BernoulliTraffic,
    BurstyTraffic,
    DeterministicTraffic,
    LpmTable,
    PacketFactory,
    PoissonTraffic,
    demo_table,
    ip,
    replay,
)


class TestLpm:
    def test_longest_prefix_wins(self):
        table = LpmTable(default_port=9)
        table.add_route(ip(10, 0, 0, 0), 8, 1)
        table.add_route(ip(10, 1, 0, 0), 16, 2)
        table.add_route(ip(10, 1, 2, 0), 24, 3)
        assert table.lookup(ip(10, 1, 2, 5)) == 3
        assert table.lookup(ip(10, 1, 9, 5)) == 2
        assert table.lookup(ip(10, 9, 9, 5)) == 1

    def test_default_port_on_miss(self):
        table = LpmTable(default_port=7)
        assert table.lookup(ip(172, 16, 0, 1)) == 7

    def test_prefix_masked_to_length(self):
        table = LpmTable()
        table.add_route(ip(10, 1, 2, 3), 16, 5)
        assert table.lookup(ip(10, 1, 99, 99)) == 5

    def test_zero_length_default_route(self):
        table = LpmTable(default_port=0)
        table.add_route(0, 0, 4)
        assert table.lookup(ip(8, 8, 8, 8)) == 4

    def test_remove_route(self):
        table = LpmTable(default_port=0)
        table.add_route(ip(10, 0, 0, 0), 8, 1)
        table.remove_route(ip(10, 0, 0, 0), 8)
        assert table.lookup(ip(10, 1, 1, 1)) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            LpmTable().remove_route(ip(10, 0, 0, 0), 8)

    def test_invalid_prefix_len(self):
        with pytest.raises(ValueError):
            LpmTable().add_route(0, 33, 1)

    def test_len_and_routes(self):
        table = demo_table(ports=4)
        assert len(table) == len(table.routes())
        assert len(table) >= 4

    def test_as_function(self):
        table = LpmTable(default_port=2)
        fn = table.as_function()
        assert fn(ip(1, 2, 3, 4)) == 2


class TestTrafficGenerators:
    def test_bernoulli_rate(self):
        gen = BernoulliTraffic(rate=0.25, seed=3)
        arrivals = sum(len(gen.packets_at(c)) for c in range(4000))
        assert 800 <= arrivals <= 1200  # ~1000 expected

    def test_bernoulli_reproducible(self):
        a = [len(BernoulliTraffic(rate=0.3, seed=9).packets_at(c)) for c in range(100)]
        b = [len(BernoulliTraffic(rate=0.3, seed=9).packets_at(c)) for c in range(100)]
        assert a == b

    def test_bernoulli_invalid_rate(self):
        with pytest.raises(ValueError):
            BernoulliTraffic(rate=1.5)

    def test_poisson_mean_gap(self):
        gen = PoissonTraffic(mean_gap=10.0, seed=4)
        arrivals = [c for c, __ in replay(gen, 5000)]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert 7 <= mean_gap <= 13

    def test_poisson_invalid_gap(self):
        with pytest.raises(ValueError):
            PoissonTraffic(mean_gap=0.5)

    def test_bursty_pattern(self):
        gen = BurstyTraffic(burst_len=3, gap_len=5, seed=2)
        pattern = [len(gen.packets_at(c)) for c in range(16)]
        assert pattern == [1, 1, 1, 0, 0, 0, 0, 0] * 2

    def test_deterministic_interval(self):
        gen = DeterministicTraffic(interval=4)
        arrivals = [c for c, __ in replay(gen, 17)]
        assert arrivals == [0, 4, 8, 12, 16]

    def test_factory_addresses_within_port_range(self):
        factory = PacketFactory(seed=11, ports=4)
        for __ in range(50):
            packet = factory.make()
            second_octet = (packet.dst_addr >> 16) & 0xFF
            assert 0 <= second_octet < 4
            assert packet.checksum_ok

    def test_factory_sequence_in_payload(self):
        factory = PacketFactory(seed=1)
        assert factory.make().payload == 1
        assert factory.make().payload == 2
