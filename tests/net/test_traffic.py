"""Pins the traffic generators' RNG streams and injection order.

The packet factory's draw is hand-inlined on the simulator's hot path
(``getrandbits`` rejection loops mirroring ``randrange``, an inline
RFC-1071 fold), and :class:`BernoulliTraffic` batches whole spans of
draws for the compiled kernel.  Committed golden traces depend on the
*stream* — field values and RNG consumption order — staying identical
to the original ``randrange``/``with_checksum`` formulation, so that
formulation is reimplemented here verbatim as the reference and every
optimized path is checked against it.
"""

import random

import pytest

from repro.net import BernoulliTraffic
from repro.net.packet import Ipv4Packet, ip
from repro.net.traffic import PacketFactory


def original_draw(rng, sequence, ports):
    """The pre-inline ``PacketFactory`` draw, kept verbatim: plain
    ``randrange`` calls plus the dataclass checksum path."""
    dst = ip(10, rng.randrange(ports), 0, 0) | rng.randrange(1 << 12)
    src = ip(192, 168, 0, 1 + (sequence % 254))
    return Ipv4Packet(
        src_addr=src,
        dst_addr=dst,
        length=64 + rng.randrange(0, 1400, 64),
        ttl=64,
        payload=sequence,
    ).with_checksum()


class TestPacketFactoryStream:
    @pytest.mark.parametrize("seed", [1, 2, 97])
    @pytest.mark.parametrize("ports", [1, 3, 4, 16])
    def test_make_message_matches_original_formulation(self, seed, ports):
        """The getrandbits rejection loops must consume the RNG
        bit-for-bit like ``randrange`` did — including non-power-of-two
        port counts, where the rejection path actually triggers."""
        factory = PacketFactory(seed=seed, ports=ports)
        rng = random.Random(seed)
        for sequence in range(1, 201):
            expected = original_draw(rng, sequence, ports).to_message()
            assert factory.make_message() == expected
        # both sides consumed the identical bit stream
        assert factory._rng.getstate() == rng.getstate()

    def test_make_matches_make_message(self):
        by_packet = PacketFactory(seed=5)
        by_message = PacketFactory(seed=5)
        for __ in range(50):
            assert by_packet.make().to_message() == by_message.make_message()

    def test_checksum_is_valid(self):
        factory = PacketFactory(seed=3)
        for __ in range(20):
            assert factory.make().checksum_ok


class TestBernoulliSpanBatching:
    def test_messages_span_matches_per_cycle_draws(self):
        """``messages_span`` is ``messages_at`` unrolled: same arrival
        cycles, same messages, same RNG state afterwards."""
        per_cycle = BernoulliTraffic(rate=0.3, seed=9)
        spanned = BernoulliTraffic(rate=0.3, seed=9)
        expected = {}
        for cycle in range(500):
            messages = per_cycle.messages_at(cycle)
            if messages:
                expected[cycle] = messages
        assert spanned.messages_span(0, 500) == expected
        assert spanned._rng.getstate() == per_cycle._rng.getstate()

    def test_messages_span_is_resumable(self):
        whole = BernoulliTraffic(rate=0.5, seed=4)
        split = BernoulliTraffic(rate=0.5, seed=4)
        merged = dict(split.messages_span(0, 123))
        merged.update(split.messages_span(123, 400))
        assert merged == whole.messages_span(0, 400)


class _ListRx:
    def __init__(self):
        self.messages = []
        self.backlog = 0

    def push(self, message):
        self.messages.append(message)


class TestAttachedHookDeliveryOrder:
    """One hook driven per cycle, one driven the way the compiled
    kernel's generated span does it — the injected sequence (message,
    cycle) must be identical, including across the seams."""

    @staticmethod
    def _drain_span(hook, start, end):
        # what a generated run_span does with a prepare_span buffer
        buffered = hook.prepare_span(start, end)
        delivered = []
        for cycle in range(start, end):
            for message in buffered.pop(cycle, ()):
                hook.rx_interface.push(message)
                hook.injected += 1
                delivered.append(cycle)
        return delivered

    def test_prepare_span_matches_per_cycle_calls(self):
        reference = BernoulliTraffic(rate=0.4, seed=6).attach(_ListRx())
        batched = BernoulliTraffic(rate=0.4, seed=6).attach(_ListRx())
        for cycle in range(300):
            reference(cycle, kernel=None)
        self._drain_span(batched, 0, 300)
        assert batched.rx_interface.messages == reference.rx_interface.messages
        assert batched.injected == reference.injected

    def test_span_and_call_interleave(self):
        """Span batches, per-cycle calls, and another span — the exact
        sequence a compiled kernel produces when an observer attaches
        mid-run — deliver the same stream as pure per-cycle calls."""
        reference = BernoulliTraffic(rate=0.4, seed=8).attach(_ListRx())
        mixed = BernoulliTraffic(rate=0.4, seed=8).attach(_ListRx())
        for cycle in range(450):
            reference(cycle, kernel=None)
        self._drain_span(mixed, 0, 150)
        for cycle in range(150, 300):  # interpreted escape hatch
            mixed(cycle, kernel=None)
        self._drain_span(mixed, 300, 450)
        assert mixed.rx_interface.messages == reference.rx_interface.messages
        assert mixed.injected == reference.injected

    def test_early_exit_leaves_arrivals_buffered(self):
        """A span that stops early (deadline, until-predicate fallback)
        must not lose the pre-drawn arrivals: per-cycle calls afterwards
        deliver them at their exact cycles."""
        reference = BernoulliTraffic(rate=0.4, seed=2).attach(_ListRx())
        partial = BernoulliTraffic(rate=0.4, seed=2).attach(_ListRx())
        for cycle in range(200):
            reference(cycle, kernel=None)
        # prepare 200 cycles but execute only 80 before bailing out
        buffered = partial.prepare_span(0, 200)
        for cycle in range(80):
            for message in buffered.pop(cycle, ()):
                partial.rx_interface.push(message)
                partial.injected += 1
        for cycle in range(80, 200):
            partial(cycle, kernel=None)
        assert partial.rx_interface.messages == reference.rx_interface.messages
        assert partial.injected == reference.injected
