#!/usr/bin/env python3
"""Fabric walkthrough: the forwarding app on a 4-bank sharded fabric.

Compiles the paper's IP-forwarding application (1 producer, 4 consumer
pseudo-ports) onto a 4-bank memory fabric — the message memory map is
interleaved over the banks and the cross-bank dependency router carries
the producer/consumer guards (``dep_home="spread"`` deliberately homes
each guard away from its data bank, so every hand-off crosses the
crossbar).  Two seeded traffic generators then drive it, and the
per-bank / crossbar / router counters show where the load landed.

Run:  python examples/fabric_scaling.py
"""

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import (
    BernoulliTraffic,
    BurstyTraffic,
    demo_table,
    forwarding_functions,
    forwarding_source,
)
from repro.report import Table

BANKS = 4
CYCLES = 3000


def build():
    design = compile_design(
        forwarding_source(4),
        organization=Organization.ARBITRATED,
        num_banks=BANKS,
        dep_home="spread",
    )
    return design, build_simulation(
        design, functions=forwarding_functions(demo_table())
    )


def drive(generator_name, generator):
    design, sim = build()
    hook = generator.attach(sim.rx["eth_in"])
    sim.kernel.add_pre_cycle_hook(hook)
    sim.run(CYCLES)

    fabric = sim.controllers["fabric"]
    stats = fabric.fabric_stats()
    table = Table(
        f"{generator_name}: per-bank load after {CYCLES} cycles",
        ["bank", "requests routed", "grants", "queue occupancy"],
    )
    for bank_name, bank in sorted(stats["banks"].items()):
        table.add_row(
            bank_name,
            bank["routed"],
            bank["granted"],
            bank["queue_occupancy"],
        )
    print(table.render())
    crossbar = stats["crossbar"]
    router = stats["router"]
    print(
        f"  crossbar: {crossbar['forwarded']} forwarded, "
        f"{crossbar['delivered']} delivered, "
        f"peak queue {crossbar['queued_peak']}"
    )
    print(
        f"  router:   {router['writes_routed']} guarded writes, "
        f"{router['reads_routed']} guarded reads, "
        f"{router['notifications_applied']} arm notifications "
        f"across {design.fabric.cross_bank_count} cross-bank deps"
    )
    print(
        f"  traffic:  injected {hook.injected} packets, "
        f"forwarded {sim.tx['eth_out'].count}"
    )
    print()


def main() -> None:
    design, __ = build()
    print(
        f"fabric: {BANKS} banks, policy "
        f"{design.fabric.config.shard_policy}, "
        f"{design.fabric.cross_bank_count} of "
        f"{len(design.fabric.routed_deps)} routed deps cross banks"
    )
    print(design.fabric_area_report().render())
    print()
    drive("bernoulli traffic (rate 0.06)", BernoulliTraffic(rate=0.06, seed=7))
    drive(
        "bursty traffic (6-on/24-off)",
        BurstyTraffic(burst_len=6, gap_len=24, seed=7),
    )


if __name__ == "__main__":
    main()
