#!/usr/bin/env python3
"""A protocol filter built on hic's `case` state-machine idiom.

Section 2 lists "state machines (case statements)" among hic's constructs;
this example uses one to dispatch packets by IP protocol, counts each
class, and produces a verdict word audited by a second thread through the
event-driven memory organization.  Bursty traffic (mixed UDP/TCP/ICMP)
drives the ingress.

Run:  python examples/packet_filter.py
"""

import random

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import Ipv4Packet, ip

FILTER_DESIGN = """
#interface{eth_in, gige}

thread filter () {
  message pkt;
  int verdict, proto, seen_udp, seen_tcp, dropped;
  receive(pkt, eth_in);
  proto = pkt.protocol;
  case (proto) {
    of 17: { seen_udp = seen_udp + 1; }
    of 6:  { seen_tcp = seen_tcp + 1; }
    default: { dropped = dropped + 1; }
  }
  #consumer{v,[audit,rec]}
  verdict = classify(proto, seen_udp, seen_tcp);
}

thread audit () {
  int rec, log_count;
  #producer{v,[filter,verdict]}
  rec = g(verdict, log_count);
  log_count = log_count + 1;
}
"""

PROTOCOLS = {17: "UDP", 6: "TCP", 1: "ICMP"}


def classify(proto: int, seen_udp: int, seen_tcp: int) -> int:
    """The verdict word: protocol class in the low byte, running totals
    above it (a combinational block in hardware)."""
    klass = {17: 1, 6: 2}.get(proto, 0)
    return klass | ((seen_udp & 0xFF) << 8) | ((seen_tcp & 0xFF) << 16)


def main() -> None:
    design = compile_design(
        FILTER_DESIGN, name="packet_filter",
        organization=Organization.EVENT_DRIVEN,
    )
    print(
        f"compiled: {len(design.fsms)} threads, "
        f"filter FSM has {design.fsms['filter'].state_count} states"
    )
    area = design.area_report("bram0")
    print(f"wrapper: LUT={area.luts} FF={area.ffs} slices={area.slices}")

    sim = build_simulation(
        design, functions={"classify": classify, "g": lambda v, n: v & 0xFF}
    )

    rng = random.Random(2006)
    mix = [17] * 6 + [6] * 3 + [1]  # 60% UDP, 30% TCP, 10% ICMP

    def burst_hook(cycle: int, kernel) -> None:
        # A 4-packet burst every 100 cycles.
        if cycle % 100 == 0:
            for i in range(4):
                packet = Ipv4Packet(
                    src_addr=ip(192, 168, 0, 1 + i),
                    dst_addr=ip(10, rng.randrange(4), 0, 1),
                    protocol=rng.choice(mix),
                ).with_checksum()
                sim.rx["eth_in"].push(packet.to_message())

    sim.kernel.add_pre_cycle_hook(burst_hook)
    result = sim.run(3000)
    print(result.describe())

    env = sim.executors["filter"].env
    total = env.get("seen_udp", 0) + env.get("seen_tcp", 0) + env.get(
        "dropped", 0
    )
    print(
        f"\nfiltered {total} packets: "
        f"UDP={env.get('seen_udp', 0)} TCP={env.get('seen_tcp', 0)} "
        f"other(dropped)={env.get('dropped', 0)}"
    )
    print(
        f"audit thread logged {sim.executors['audit'].env.get('log_count', 0)}"
        " verdicts (one per packet, via the event-driven wrapper)"
    )
    audited = sim.executors["audit"].env.get("log_count", 0)
    assert audited == total, "audit must see every verdict exactly once"


if __name__ == "__main__":
    main()
