#!/usr/bin/env python3
"""Design-space exploration with the organization advisor (paper §4, §6).

The paper "envisage[s] providing the user with access to either of these
implementations based on design time implementation constraints and
parameters".  This example:

1. asks the advisor for a recommendation under several constraint sets;
2. sweeps the dependency-list capacity of the arbitrated wrapper (the §6
   future-work question: "the impact of large amount of data dependencies
   on the size of list");
3. checks which Virtex-II Pro family member each configuration fits with
   the full 5430-slice forwarding application around it;
4. runs a *predict-pruned* exploration: the analytical model
   (:mod:`repro.model`, docs/performance_model.md) scores the whole
   organization x banks x traffic grid in microseconds, and only the
   predicted Pareto frontier plus a safety margin is simulated.

The sweep, the device-fit matrix, and the pruned exploration all ride
the fault-tolerant campaign engine (:mod:`repro.campaign`): each point
is one independent run, so ``--workers N`` fans the exploration across
crash-isolated processes while the merged tables stay byte-identical to
a serial run.

Run:  python examples/design_space_exploration.py [--workers N]
      python examples/design_space_exploration.py --predict-prune \\
          [--margin 0.15]        # just the model-pruned exploration
"""

import argparse

from repro.campaign import (
    EngineConfig,
    RunSpec,
    predict_pruned_matrix,
    run_matrix,
)
from repro.core import DesignConstraints, Organization, recommend
from repro.flow import compile_design
from repro.fpga import VIRTEX2PRO_FAMILY, estimate_area, estimate_timing
from repro.model import DEFAULT_MARGIN, area_slices, predict
from repro.net import APP_TOTAL_SLICES, forwarding_source
from repro.report import Table
from repro.rtl import WrapperParams, generate_arbitrated_wrapper


def advisor_demo() -> None:
    print("=== organization advisor ===")
    cases = {
        "greenfield design, loose clock": DesignConstraints(timing_slack=1.3),
        "hard 125 MHz budget, fixed port count": DesignConstraints(
            timing_slack=0.9, need_deterministic_latency=True
        ),
        "product line, consumers added per SKU": DesignConstraints(
            timing_slack=1.2, expect_new_consumers=True,
            reuse_bus_style_clients=True,
        ),
    }
    for label, constraints in cases.items():
        recommendation = recommend(constraints)
        print(f"\n[{label}]")
        print(recommendation.explain())


def deplist_point_task(payload: dict) -> list:
    """One dependency-list sweep point (campaign-engine task)."""
    entries = payload["entries"]
    module = generate_arbitrated_wrapper(
        WrapperParams(consumers=payload["consumers"], deplist_entries=entries)
    )
    area = estimate_area(module)
    timing = estimate_timing(module)
    return [
        entries, area.luts, area.ffs, area.slices, f"{timing.fmax_mhz:.0f}"
    ]


def deplist_sweep(workers: int = 1) -> None:
    print("\n=== dependency-list capacity sweep (arbitrated, 4 consumers) ===")
    specs = [
        RunSpec(index=index, payload={"entries": entries, "consumers": 4})
        for index, entries in enumerate((2, 4, 8, 16, 32))
    ]
    report = run_matrix(
        deplist_point_task, specs, EngineConfig(workers=workers)
    )
    table = Table(
        "area/timing vs dependency-list entries",
        ["entries", "LUT", "FF", "slices", "fmax (MHz)"],
    )
    for result in report.results:
        if not result.ok:
            raise RuntimeError(f"sweep point #{result.index}: {result.error}")
        table.add_row(*result.value)
    print(table.render())


def device_fit_task(payload: dict) -> list:
    """Fit check for one Virtex-II Pro family member (engine task)."""
    device = VIRTEX2PRO_FAMILY[payload["device"]]
    total = payload["total_slices"]
    fits = device.fits(total, brams=payload["bram_count"])
    return [
        payload["device"],
        device.slices,
        "yes" if fits else "no",
        f"{100 * total / device.slices:.0f}%",
    ]


def device_fit(workers: int = 1) -> None:
    print("\n=== device fit for the full application ===")
    design = compile_design(
        forwarding_source(8, with_io=False),
        organization=Organization.ARBITRATED,
    )
    wrapper_slices = design.area_report("bram0").slices
    total = APP_TOTAL_SLICES + wrapper_slices
    specs = [
        RunSpec(
            index=index,
            payload={
                "device": name,
                "total_slices": total,
                "bram_count": design.memory_map.bram_count(),
            },
        )
        for index, name in enumerate(
            sorted(VIRTEX2PRO_FAMILY, key=lambda n: VIRTEX2PRO_FAMILY[n].slices)
        )
    ]
    report = run_matrix(device_fit_task, specs, EngineConfig(workers=workers))
    table = Table(
        f"application ({APP_TOTAL_SLICES} slices) + wrapper "
        f"({wrapper_slices} slices) = {total} slices",
        ["device", "slices", "fits", "utilization"],
    )
    for result in report.results:
        if not result.ok:
            raise RuntimeError(f"fit check #{result.index}: {result.error}")
        table.add_row(*result.value)
    print(table.render())


#: The pruned exploration grid: every organization, on-fabric bank
#: counts, sparse and near-saturated traffic.  Horizons are sized for a
#: demo (the validation grid in ``repro.model.validate`` uses longer
#: sparse runs to converge the realized Bernoulli rate).
PRUNE_BANKS = (1, 4)
PRUNE_RATES = (0.02, 0.9)
PRUNE_CYCLES = {0.02: 8_000, 0.9: 2_000}


def _point_parameters(payload: dict):
    """Model parameters for one grid payload (compile + extract)."""
    design = compile_design(
        forwarding_source(2),
        name=f"dse_{payload['organization']}_{payload['banks']}",
        organization=Organization(payload["organization"]),
        num_banks=payload["banks"],
    )
    return design.model_parameters(traffic_rate=payload["rate"])


def dse_model_objectives(payload: dict) -> tuple:
    """Analytical minimization objectives for one grid point: the tuple
    :func:`repro.campaign.predict_pruned_matrix` prunes on."""
    params = _point_parameters(payload)
    prediction = predict(params)
    return (
        -prediction.throughput,
        prediction.consumer_wait,
        float(area_slices(params)),
    )


def dse_point_task(payload: dict) -> dict:
    """Simulate one *kept* grid point (campaign-engine task)."""
    from repro.model.validate import simulate_config

    prediction, observed = simulate_config(
        forwarding_source(2),
        Organization(payload["organization"]),
        payload["banks"],
        payload["rate"],
        payload["cycles"],
    )
    return {
        "throughput": observed["throughput"],
        "consumer_wait": observed["consumer_wait"],
    }


def predict_prune_dse(
    workers: int = 1, margin: float = DEFAULT_MARGIN
) -> None:
    print("\n=== predict-pruned exploration (model scores, simulator confirms) ===")
    specs = []
    for organization in sorted(o.value for o in Organization):
        for banks in PRUNE_BANKS:
            for rate in PRUNE_RATES:
                specs.append(
                    RunSpec(
                        index=len(specs),
                        payload={
                            "organization": organization,
                            "banks": banks,
                            "rate": rate,
                            "cycles": PRUNE_CYCLES[rate],
                        },
                    )
                )
    report = predict_pruned_matrix(
        dse_point_task,
        specs,
        dse_model_objectives,
        EngineConfig(workers=workers),
        margin=margin,
        exact=(2,),  # slice area carries no model error
    )
    print(
        f"model scored {report.total} points; simulated "
        f"{len(report.kept)} ({report.simulated_fraction:.0%}), "
        f"skipped {len(report.skipped)} (margin {margin})"
    )
    table = Table(
        "kept points: predicted vs simulated",
        ["org", "banks", "rate", "thr (model)", "thr (sim)",
         "wait (model)", "wait (sim)"],
    )
    by_index = {result.index: result for result in report.engine.results}
    for spec in specs:
        if spec.index not in by_index:
            continue
        result = by_index[spec.index]
        if not result.ok:
            raise RuntimeError(f"point #{result.index}: {result.error}")
        neg_throughput, wait, __ = report.objectives[spec.index]
        table.add_row(
            spec.payload["organization"],
            spec.payload["banks"],
            spec.payload["rate"],
            f"{-neg_throughput:.4f}",
            f"{result.value['throughput']:.4f}",
            f"{wait:.1f}",
            f"{result.value['consumer_wait']:.1f}",
        )
    print(table.render())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan exploration points across crash-isolated worker processes",
    )
    parser.add_argument(
        "--predict-prune",
        action="store_true",
        help="run only the model-pruned exploration (section 4)",
    )
    parser.add_argument(
        "--margin",
        type=float,
        default=DEFAULT_MARGIN,
        help="predict-prune safety margin (default: %(default)s)",
    )
    arguments = parser.parse_args()
    if arguments.predict_prune:
        predict_prune_dse(
            workers=arguments.workers, margin=arguments.margin
        )
        return
    advisor_demo()
    deplist_sweep(workers=arguments.workers)
    device_fit(workers=arguments.workers)
    predict_prune_dse(workers=arguments.workers, margin=arguments.margin)


if __name__ == "__main__":
    main()
