#!/usr/bin/env python3
"""Design-space exploration with the organization advisor (paper §4, §6).

The paper "envisage[s] providing the user with access to either of these
implementations based on design time implementation constraints and
parameters".  This example:

1. asks the advisor for a recommendation under several constraint sets;
2. sweeps the dependency-list capacity of the arbitrated wrapper (the §6
   future-work question: "the impact of large amount of data dependencies
   on the size of list");
3. checks which Virtex-II Pro family member each configuration fits with
   the full 5430-slice forwarding application around it.

The sweep and the device-fit matrix both ride the fault-tolerant
campaign engine (:mod:`repro.campaign`): each point is one independent
run, so ``--workers N`` fans the exploration across crash-isolated
processes while the merged tables stay byte-identical to a serial run.

Run:  python examples/design_space_exploration.py [--workers N]
"""

import argparse

from repro.campaign import EngineConfig, RunSpec, run_matrix
from repro.core import DesignConstraints, Organization, recommend
from repro.flow import compile_design
from repro.fpga import VIRTEX2PRO_FAMILY, estimate_area, estimate_timing
from repro.net import APP_TOTAL_SLICES, forwarding_source
from repro.report import Table
from repro.rtl import WrapperParams, generate_arbitrated_wrapper


def advisor_demo() -> None:
    print("=== organization advisor ===")
    cases = {
        "greenfield design, loose clock": DesignConstraints(timing_slack=1.3),
        "hard 125 MHz budget, fixed port count": DesignConstraints(
            timing_slack=0.9, need_deterministic_latency=True
        ),
        "product line, consumers added per SKU": DesignConstraints(
            timing_slack=1.2, expect_new_consumers=True,
            reuse_bus_style_clients=True,
        ),
    }
    for label, constraints in cases.items():
        recommendation = recommend(constraints)
        print(f"\n[{label}]")
        print(recommendation.explain())


def deplist_point_task(payload: dict) -> list:
    """One dependency-list sweep point (campaign-engine task)."""
    entries = payload["entries"]
    module = generate_arbitrated_wrapper(
        WrapperParams(consumers=payload["consumers"], deplist_entries=entries)
    )
    area = estimate_area(module)
    timing = estimate_timing(module)
    return [
        entries, area.luts, area.ffs, area.slices, f"{timing.fmax_mhz:.0f}"
    ]


def deplist_sweep(workers: int = 1) -> None:
    print("\n=== dependency-list capacity sweep (arbitrated, 4 consumers) ===")
    specs = [
        RunSpec(index=index, payload={"entries": entries, "consumers": 4})
        for index, entries in enumerate((2, 4, 8, 16, 32))
    ]
    report = run_matrix(
        deplist_point_task, specs, EngineConfig(workers=workers)
    )
    table = Table(
        "area/timing vs dependency-list entries",
        ["entries", "LUT", "FF", "slices", "fmax (MHz)"],
    )
    for result in report.results:
        if not result.ok:
            raise RuntimeError(f"sweep point #{result.index}: {result.error}")
        table.add_row(*result.value)
    print(table.render())


def device_fit_task(payload: dict) -> list:
    """Fit check for one Virtex-II Pro family member (engine task)."""
    device = VIRTEX2PRO_FAMILY[payload["device"]]
    total = payload["total_slices"]
    fits = device.fits(total, brams=payload["bram_count"])
    return [
        payload["device"],
        device.slices,
        "yes" if fits else "no",
        f"{100 * total / device.slices:.0f}%",
    ]


def device_fit(workers: int = 1) -> None:
    print("\n=== device fit for the full application ===")
    design = compile_design(
        forwarding_source(8, with_io=False),
        organization=Organization.ARBITRATED,
    )
    wrapper_slices = design.area_report("bram0").slices
    total = APP_TOTAL_SLICES + wrapper_slices
    specs = [
        RunSpec(
            index=index,
            payload={
                "device": name,
                "total_slices": total,
                "bram_count": design.memory_map.bram_count(),
            },
        )
        for index, name in enumerate(
            sorted(VIRTEX2PRO_FAMILY, key=lambda n: VIRTEX2PRO_FAMILY[n].slices)
        )
    ]
    report = run_matrix(device_fit_task, specs, EngineConfig(workers=workers))
    table = Table(
        f"application ({APP_TOTAL_SLICES} slices) + wrapper "
        f"({wrapper_slices} slices) = {total} slices",
        ["device", "slices", "fits", "utilization"],
    )
    for result in report.results:
        if not result.ok:
            raise RuntimeError(f"fit check #{result.index}: {result.error}")
        table.add_row(*result.value)
    print(table.render())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan exploration points across crash-isolated worker processes",
    )
    arguments = parser.parse_args()
    advisor_demo()
    deplist_sweep(workers=arguments.workers)
    device_fit(workers=arguments.workers)


if __name__ == "__main__":
    main()
