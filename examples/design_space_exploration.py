#!/usr/bin/env python3
"""Design-space exploration with the organization advisor (paper §4, §6).

The paper "envisage[s] providing the user with access to either of these
implementations based on design time implementation constraints and
parameters".  This example:

1. asks the advisor for a recommendation under several constraint sets;
2. sweeps the dependency-list capacity of the arbitrated wrapper (the §6
   future-work question: "the impact of large amount of data dependencies
   on the size of list");
3. checks which Virtex-II Pro family member each configuration fits with
   the full 5430-slice forwarding application around it.

Run:  python examples/design_space_exploration.py
"""

from repro.core import DesignConstraints, Organization, recommend
from repro.flow import compile_design
from repro.fpga import VIRTEX2PRO_FAMILY, estimate_area, estimate_timing
from repro.net import APP_TOTAL_SLICES, forwarding_source
from repro.report import Table
from repro.rtl import WrapperParams, generate_arbitrated_wrapper


def advisor_demo() -> None:
    print("=== organization advisor ===")
    cases = {
        "greenfield design, loose clock": DesignConstraints(timing_slack=1.3),
        "hard 125 MHz budget, fixed port count": DesignConstraints(
            timing_slack=0.9, need_deterministic_latency=True
        ),
        "product line, consumers added per SKU": DesignConstraints(
            timing_slack=1.2, expect_new_consumers=True,
            reuse_bus_style_clients=True,
        ),
    }
    for label, constraints in cases.items():
        recommendation = recommend(constraints)
        print(f"\n[{label}]")
        print(recommendation.explain())


def deplist_sweep() -> None:
    print("\n=== dependency-list capacity sweep (arbitrated, 4 consumers) ===")
    table = Table(
        "area/timing vs dependency-list entries",
        ["entries", "LUT", "FF", "slices", "fmax (MHz)"],
    )
    for entries in (2, 4, 8, 16, 32):
        module = generate_arbitrated_wrapper(
            WrapperParams(consumers=4, deplist_entries=entries)
        )
        area = estimate_area(module)
        timing = estimate_timing(module)
        table.add_row(
            entries, area.luts, area.ffs, area.slices, f"{timing.fmax_mhz:.0f}"
        )
    print(table.render())


def device_fit() -> None:
    print("\n=== device fit for the full application ===")
    design = compile_design(
        forwarding_source(8, with_io=False),
        organization=Organization.ARBITRATED,
    )
    wrapper_slices = design.area_report("bram0").slices
    total = APP_TOTAL_SLICES + wrapper_slices
    table = Table(
        f"application ({APP_TOTAL_SLICES} slices) + wrapper "
        f"({wrapper_slices} slices) = {total} slices",
        ["device", "slices", "fits", "utilization"],
    )
    for name, device in sorted(
        VIRTEX2PRO_FAMILY.items(), key=lambda kv: kv[1].slices
    ):
        fits = device.fits(total, brams=design.memory_map.bram_count())
        table.add_row(
            name,
            device.slices,
            "yes" if fits else "no",
            f"{100 * total / device.slices:.0f}%",
        )
    print(table.render())


def main() -> None:
    advisor_demo()
    deplist_sweep()
    device_fit()


if __name__ == "__main__":
    main()
