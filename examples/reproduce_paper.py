#!/usr/bin/env python3
"""One-shot reproduction of the paper's whole evaluation (E1-E8).

Runs every experiment from DESIGN.md's index and prints a paper-vs-measured
report — the data behind EXPERIMENTS.md, regenerated live.  For statistical
timing, use ``pytest benchmarks/ --benchmark-only`` instead; this script
optimizes for a single readable pass.

Run:  python examples/reproduce_paper.py
"""

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.fpga import PAPER_TARGET_MHZ, overhead_fraction
from repro.net import (
    CORE_FORWARDING_SLICES,
    forwarding_source,
    multi_pair_source,
)
from repro.report import Comparison, area_table, shape_verdict
from repro.rtl import WrapperParams, generate_arbitrated_wrapper
from repro.fpga import estimate_area, estimate_timing
from repro.sim.probes import PostWriteLatencyProbe

SCENARIOS = (2, 4, 8)
PAPER_FMAX = {
    "arbitrated": [158.0, 130.0, 125.0],
    "event_driven": [177.0, 136.0, 129.0],
}

comparisons: list[Comparison] = []


def record(experiment, quantity, paper, measured, verdict):
    comparisons.append(
        Comparison(experiment, quantity, str(paper), str(measured), verdict)
    )


def wrapper_reports(organization):
    reports = []
    for consumers in SCENARIOS:
        design = compile_design(
            forwarding_source(consumers, with_io=False),
            organization=organization,
        )
        reports.append(
            (design.area_report("bram0"), design.timing_report("bram0"))
        )
    return reports


def experiment_e1_e2() -> None:
    for organization, table_name in (
        (Organization.ARBITRATED, "Table 1 (arbitrated)"),
        (Organization.EVENT_DRIVEN, "Table 2 (event-driven)"),
    ):
        reports = wrapper_reports(organization)
        rows = [
            (f"1/{c}", a.luts, a.ffs, a.slices)
            for c, (a, __) in zip(SCENARIOS, reports)
        ]
        print(area_table(table_name, rows).render())
        if organization is Organization.ARBITRATED:
            ffs = [a.ffs for a, __ in reports]
            record(
                "E1", "baseline FF count (constant)", 66,
                f"{ffs[0]}/{ffs[1]}/{ffs[2]}",
                "match" if ffs == [66, 66, 66] else "mismatch",
            )
            luts = [a.luts for a, __ in reports]
            record(
                "E1", "LUT-only growth with consumers", "monotone",
                "monotone" if luts == sorted(luts) else "non-monotone",
                "match" if luts == sorted(luts) else "mismatch",
            )


def experiment_e3() -> None:
    for organization, label in (
        (Organization.ARBITRATED, "arbitrated"),
        (Organization.EVENT_DRIVEN, "event_driven"),
    ):
        fmax = [t.fmax_mhz for __, t in wrapper_reports(organization)]
        verdict = shape_verdict(PAPER_FMAX[label], fmax)
        record(
            "E3",
            f"{label} fmax series (MHz)",
            "/".join(f"{v:.0f}" for v in PAPER_FMAX[label]),
            "/".join(f"{v:.0f}" for v in fmax),
            verdict,
        )
        meets = all(v >= PAPER_TARGET_MHZ for v in fmax)
        record(
            "E3", f"{label} meets 125 MHz target", "yes",
            "yes" if meets else "no", "match" if meets else "mismatch",
        )


def experiment_e4() -> None:
    fractions = [
        overhead_fraction(a, CORE_FORWARDING_SLICES)
        for a, __ in wrapper_reports(Organization.ARBITRATED)
    ]
    in_band = all(0.05 <= f <= 0.20 for f in fractions)
    record(
        "E4", "arbitrated overhead in 5-20% band", "5-20%",
        "/".join(f"{100 * f:.1f}%" for f in fractions),
        "match" if in_band else "mismatch",
    )


def experiment_e5() -> None:
    jitter = {}
    for organization in (Organization.ARBITRATED, Organization.EVENT_DRIVEN):
        design = compile_design(
            multi_pair_source(3, 2), organization=organization
        )
        sim = build_simulation(design)
        sim.run(3000)
        probe = PostWriteLatencyProbe(sim.controllers["bram0"])
        jitter[organization.value] = probe.max_jitter()
    record(
        "E5", "arbitrated post-write latency", "non-deterministic",
        f"jitter {jitter['arbitrated']:.2f} cycles",
        "match" if jitter["arbitrated"] > 0 else "mismatch",
    )
    record(
        "E5", "event-driven post-write latency", "deterministic",
        f"jitter {jitter['event_driven']:.2f} cycles",
        "match" if jitter["event_driven"] == 0 else "mismatch",
    )


FIGURE1 = """
thread t1 () {
  int x1, xtmp, x2;
  #consumer{mt1,[t2,y1],[t3,z1]}
  x1 = f(xtmp, x2);
}
thread t2 () {
  int y1, y2;
  #producer{mt1,[t1,x1]}
  y1 = g(x1, y2);
}
thread t3 () {
  int z1, z2;
  #producer{mt1,[t1,x1]}
  z1 = h(x1, z2);
}
"""


def experiment_e6() -> None:
    values = set()
    for organization in Organization:
        design = compile_design(FIGURE1, organization=organization)
        sim = build_simulation(design)
        sim.run(300)
        values.add(
            (sim.executors["t2"].env["y1"], sim.executors["t3"].env["z1"])
        )
    record(
        "E6", "Figure 1 agrees across all 3 controllers", "one value set",
        f"{len(values)} value set(s)",
        "match" if len(values) == 1 else "mismatch",
    )


def experiment_e7() -> None:
    ffs = []
    for entries in (2, 4, 8, 16, 32):
        module = generate_arbitrated_wrapper(
            WrapperParams(consumers=4, deplist_entries=entries)
        )
        ffs.append(estimate_area(module).ffs)
    deltas = {b - a for a, b in zip(ffs, ffs[1:])} if len(ffs) > 1 else set()
    per_entry = {
        (b - a) // (eb - ea)
        for (a, b), (ea, eb) in zip(
            zip(ffs, ffs[1:]), zip((2, 4, 8, 16), (4, 8, 16, 32))
        )
    }
    fmax32 = estimate_timing(
        generate_arbitrated_wrapper(
            WrapperParams(consumers=4, deplist_entries=32)
        )
    ).fmax_mhz
    record(
        "E7", "FF cost per dependency-list entry", "n/a (future work)",
        f"{sorted(per_entry)} FF/entry, fmax@32={fmax32:.0f} MHz",
        "reported",
    )


def experiment_e8() -> None:
    rounds = {}
    for organization in (Organization.ARBITRATED, Organization.LOCK_BASELINE):
        design = compile_design(
            forwarding_source(4, with_io=False), organization=organization
        )
        sim = build_simulation(design)
        sim.run(2000)
        rounds[organization.value] = (
            sim.executors["egress0"].stats.rounds_completed
        )
    speedup = rounds["arbitrated"] / max(1, rounds["lock_baseline"])
    record(
        "E8", "wrapper vs lock-baseline throughput", "qualitative (lock-free wins)",
        f"{speedup:.1f}x more rounds",
        "match" if speedup > 2 else "mismatch",
    )


def main() -> None:
    experiment_e1_e2()
    experiment_e3()
    experiment_e4()
    experiment_e5()
    experiment_e6()
    experiment_e7()
    experiment_e8()

    print("\n=== paper vs measured ===")
    failures = 0
    for comparison in comparisons:
        print(" ", comparison.render())
        if comparison.verdict == "mismatch":
            failures += 1
    print(
        f"\n{len(comparisons)} comparisons, "
        f"{len(comparisons) - failures} reproduced, {failures} mismatches"
    )
    if failures:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
