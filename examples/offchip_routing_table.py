#!/usr/bin/env python3
"""On-chip vs off-chip routing tables (the §2 distributed-memory mapping).

The paper's logical shared memory maps "on to a physically distributed
on- and off-chip memory organization".  This example builds the same
table-walking router twice — once with a table that fits a single BRAM,
once with a 600-entry table spilled to the modelled external SRAM — and
compares the lookup loop's throughput.  The off-chip version pays the
external memory's multi-cycle access on every probe.

Run:  python examples/offchip_routing_table.py
"""

from repro.flow import build_simulation, compile_design
from repro.memory import DEFAULT_LATENCY
from repro.report import Table

#: A thread that linearly probes a table of (keyed) entries per round.
#: Table size is the knob: 100 entries fit a BRAM; 600 must spill.
SOURCE_TEMPLATE = """
thread router () {{
  int table[{entries}], probe, hits, i, seeded;
  if (seeded == 0) {{
    for (i = 0; i < 8; i = i + 1) {{ table[i] = i * 16; }}
    seeded = 1;
  }}
  probe = (probe + 16) % 128;
  i = probe / 16;
  if (table[i] == probe) {{
    hits = hits + 1;
  }}
}}
"""


def run(entries: int, allow_offchip: bool):
    design = compile_design(
        SOURCE_TEMPLATE.format(entries=entries),
        name=f"router_{entries}",
        allow_offchip=allow_offchip,
    )
    sim = build_simulation(design)
    sim.run(4000)
    stats = sim.executors["router"].stats
    placement = design.memory_map.placement("router", "table")
    return placement, stats


def main() -> None:
    table = Table(
        "routing-table residency comparison (4000 cycles)",
        ["table entries", "residency", "rounds", "stall cycles", "busy"],
    )
    for entries, allow_offchip in ((100, False), (600, True)):
        placement, stats = run(entries, allow_offchip)
        table.add_row(
            entries,
            placement.residency.value,
            stats.rounds_completed,
            stats.stall_cycles,
            f"{100 * stats.utilization:.0f}%",
        )
    print(table.render())
    print(
        f"\nevery off-chip probe pays the external access latency "
        f"({DEFAULT_LATENCY} cycles), so the spilled table completes fewer "
        "lookup rounds in the same wall-clock budget — the quantitative "
        "reason the paper keeps synchronized data in on-chip BRAMs."
    )


if __name__ == "__main__":
    main()
