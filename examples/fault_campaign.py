#!/usr/bin/env python3
"""Fault injection and runtime watchdogs over the generated controllers.

The paper's synchronization is *safe by construction* — under fault-free
hardware.  This example exercises the unhappy path:

1. a seeded chaos campaign over both memory organizations, classifying
   every run as clean / detected-recovered / detected-aborted /
   silent-corruption against a golden trace;
2. a single targeted fault (producer death) watched live by the runtime
   watchdog, showing the break-dependency recovery;
3. a dynamically deadlocking design (static check bypassed) that the
   watchdog converts from a silent hang into a structured error.

Run:  python examples/fault_campaign.py
"""

from repro.core import Organization, RuntimeDeadlockError
from repro.faults import CampaignConfig, ProducerStall, Watchdog, run_campaign
from repro.flow import build_simulation, compile_design

DEADLOCK = """
thread ta () {
  int pa, va;
  #producer{db,[tb,pb]}
  va = f(pb);
  #consumer{da,[tb,vb]}
  pa = g(va);
}

thread tb () {
  int pb, vb;
  #producer{da,[ta,pa]}
  vb = f(pa);
  #consumer{db,[ta,va]}
  pb = g(vb);
}
"""


def chaos_campaign() -> None:
    print("=== seeded chaos campaign (both organizations) ===")
    report = run_campaign(CampaignConfig(seed=7, runs=4, cycles=300))
    print(report.render())


def targeted_stall() -> None:
    print("\n=== targeted fault: producer dies mid-run ===")
    from repro.faults.campaign import CAMPAIGN_SOURCE

    design = compile_design(
        CAMPAIGN_SOURCE, organization=Organization.ARBITRATED
    )
    sim = build_simulation(design)
    sim.inject_faults([ProducerStall(at_cycle=50, client="stage1")])
    watchdog = sim.attach_watchdog(
        read_timeout=32, policy="break-dependency"
    )
    sim.run(300)
    print(watchdog.report())


def dynamic_deadlock() -> None:
    print("\n=== dynamic deadlock: watchdog aborts the silent hang ===")
    design = compile_design(DEADLOCK, check_deadlock=False)
    sim = build_simulation(design)
    Watchdog(read_timeout=10_000, deadlock_window=64, policy="abort").attach(
        sim
    )
    try:
        sim.run(5_000)
        print("unexpected: simulation completed")
    except RuntimeDeadlockError as error:
        print(f"aborted with: {error.describe()}")


def main() -> None:
    chaos_campaign()
    targeted_stall()
    dynamic_deadlock()


if __name__ == "__main__":
    main()
