#!/usr/bin/env python3
"""Latency determinism study: arbitrated vs event-driven (paper §3.1/§3.2).

Maps three independent producer/consumer pairs onto one BRAM — the
configuration the paper identifies as the source of non-deterministic
timing — and measures each consumer's *post-write* latency (cycles from
the producer's granted write to that consumer's granted read).

Expected outcome, matching the paper's discussion:

* arbitrated: the wait varies with what else contends on port C
  (jitter > 0);
* event-driven: every consumer reads at its fixed slot offset
  (jitter == 0), at the price of producers waiting for their modulo slot.

Run:  python examples/latency_study.py
"""

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import multi_pair_source
from repro.report import Table
from repro.sim.probes import PostWriteLatencyProbe

PAIRS = 3
CONSUMERS_PER_PAIR = 2
CYCLES = 5000


def study(organization: Organization) -> PostWriteLatencyProbe:
    source = multi_pair_source(PAIRS, CONSUMERS_PER_PAIR)
    design = compile_design(source, organization=organization)
    sim = build_simulation(design)
    sim.run(CYCLES)
    return PostWriteLatencyProbe(sim.controllers["bram0"])


def main() -> None:
    table = Table(
        f"post-write consumer-read latency over {CYCLES} cycles "
        f"({PAIRS} producer/consumer pairs on one BRAM)",
        ["organization", "consumer", "min", "mean", "max", "jitter", "verdict"],
    )
    for organization in (Organization.ARBITRATED, Organization.EVENT_DRIVEN):
        probe = study(organization)
        for summary in probe.summaries():
            verdict = "deterministic" if summary.deterministic else "variable"
            table.add_row(
                organization.value,
                f"{summary.thread}/{summary.dep_id}",
                min(summary.waits),
                f"{summary.mean_wait:.2f}",
                summary.max_wait,
                f"{summary.jitter:.2f}",
                verdict,
            )
        overall = (
            "all deterministic"
            if probe.all_deterministic()
            else f"max jitter {probe.max_jitter():.2f} cycles"
        )
        print(f"{organization.value}: {overall}")
    print()
    print(table.render())


if __name__ == "__main__":
    main()
