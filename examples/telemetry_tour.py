#!/usr/bin/env python3
"""Tour of the telemetry layer: traces, spans, and metrics.

Runs the 4-consumer IP-forwarding design with telemetry attached and
writes every exporter's output — a Perfetto-loadable Chrome trace, a
Prometheus text exposition, and JSON/CSV summaries — then prints the
highlights: dependency-span statistics (the paper's §3.1 wait
distribution), watchdog counters, and where the artifacts landed.

Run:  python examples/telemetry_tour.py [output-dir]

Without an argument the artifacts go to a temporary directory.
"""

import sys
import tempfile
from pathlib import Path

from repro.flow import build_simulation, compile_design
from repro.net import (
    BernoulliTraffic,
    demo_table,
    forwarding_functions,
    forwarding_source,
)
from repro.obs.exporters import (
    write_chrome_trace,
    write_prometheus,
    write_summary_csv,
    write_summary_json,
)

CONSUMERS = 4
CYCLES = 2000


def main() -> None:
    if len(sys.argv) > 1:
        out_dir = Path(sys.argv[1])
        out_dir.mkdir(parents=True, exist_ok=True)
    else:
        out_dir = Path(tempfile.mkdtemp(prefix="telemetry_tour_"))

    design = compile_design(forwarding_source(CONSUMERS))
    sim = build_simulation(design, functions=forwarding_functions(demo_table()))
    telemetry = sim.attach_telemetry()
    generator = BernoulliTraffic(rate=0.06, seed=1)
    sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
    sim.run(CYCLES)

    trace_path = out_dir / "trace.json"
    metrics_path = out_dir / "metrics.prom"
    summary_path = out_dir / "summary.json"
    csv_path = out_dir / "metrics.csv"
    write_chrome_trace(telemetry, str(trace_path))
    write_prometheus(telemetry, str(metrics_path))
    write_summary_json(telemetry, str(summary_path))
    write_summary_csv(telemetry, str(csv_path))

    print(telemetry.describe())
    print()
    print("dependency spans (producer write -> last consumer read):")
    for (bram, dep_id), stats in telemetry.spans.wait_statistics().items():
        if not stats["observed"]:
            print(f"  {bram}/{dep_id}: n/a (no samples observed)")
            continue
        print(
            f"  {bram}/{dep_id}: {stats['complete']}/{stats['spans']} spans "
            f"complete, {stats['reads']} reads, "
            f"wait {stats['wait_min']}..{stats['wait_max']} cycles "
            f"(mean {stats['wait_mean']:.1f}), post-write "
            f"{stats['post_write_min']}..{stats['post_write_max']}"
        )

    registry = telemetry.finalize()
    granted = registry.get("sim_requests_granted_total")
    print()
    print("grants per controller port:")
    for (bram, port), count in granted.samples():
        print(f"  {bram} port {port}: {count}")

    print()
    print(f"artifacts in {out_dir}:")
    for path in (trace_path, metrics_path, summary_path, csv_path):
        print(f"  {path.name}: {path.stat().st_size} bytes")
    print()
    print("load trace.json in https://ui.perfetto.dev to see the spans.")


if __name__ == "__main__":
    main()
