#!/usr/bin/env python3
"""Streaming process networks and channel-aware synthesis.

The paper's guarded-BRAM organizations (§3.1/§3.2) synchronize every
produced variable through CAM-matched dependency entries.  For streaming
process networks, most channels are simpler than that: one producer, one
consumer, strictly in program order.  The channel classifier proves that
shape statically and lowers such channels to plain FIFOs, keeping the
guarded machinery only where broadcasts or address reuse demand it.

This example builds the fan-out scenario — a splitter feeding three
parallel workers a private stream each (FIFO-lowerable) plus one
broadcast mode word to all of them (guarded) — and walks the per-channel
report: classification with the deciding rule, synchronization-area
delta, and end-to-end progress in both synthesis modes.

Run:  python examples/streaming_pipeline.py
"""

from repro.scenarios import (
    build_scenario_simulation,
    get_scenario,
    scenario_report,
)
from repro.scenarios.report import render_report

scenario = get_scenario("fanout")
print(f"scenario {scenario.name!r}: {scenario.title}")
print(scenario.description)
print()

# -- 1. classification: the mixed case -------------------------------------------------

design, sim = build_scenario_simulation(scenario, channel_synthesis="fifo")
print("channel classification:")
for decision in design.channel_decisions.values():
    print(
        f"  {decision.dep_id}: {decision.channel_class.value.upper():7s} "
        f"{decision.producer_thread}.{decision.producer_var} -> "
        f"{','.join(decision.consumer_threads)}  ({decision.reason})"
    )
fifo = [d for d in design.channel_decisions.values() if d.is_fifo]
guarded = [d for d in design.channel_decisions.values() if not d.is_fifo]
assert len(fifo) == 3, "the three worker streams must lower to FIFOs"
assert len(guarded) == 1, "the broadcast mode word must stay guarded"
print()

# -- 2. the lowered design runs, in order ----------------------------------------------

sim.run(400)
print("after 400 cycles (fifo synthesis):")
for name in sorted(design.fifo_deps):
    controller = sim.controllers[name]
    assert controller.in_order(), "FIFO channels must deliver in order"
    print(f"  {controller.describe()}")
for sink in scenario.sink_threads:
    rounds = sim.executors[sink].stats.rounds_completed
    print(f"  worker {sink}: {rounds} rounds completed")
print()

# -- 3. the per-channel report: area and progress vs all-guarded -----------------------

report = scenario_report(scenario.name, cycles=400)
print(render_report(report))
assert report["progress"]["delta_rounds"] > 0, (
    "decoupling the worker streams must buy throughput"
)
print()

# The area story depends on the shape.  Here the broadcast keeps the
# guarded wrapper alive, so the three added FIFOs cost net slices (the
# report above says so, honestly).  On the pure pipeline the guarded
# BRAM disappears entirely and the lowering *saves* area:

pipeline = scenario_report("pipeline", cycles=400)
print(render_report(pipeline))
assert pipeline["area"]["delta_slices"] > 0, (
    "FIFO lowering must save synchronization area on the pure pipeline"
)
print()
print(
    f"fan-out: +{report['progress']['delta_rounds']} rounds for "
    f"{-report['area']['delta_slices']} extra slices; pipeline: "
    f"{pipeline['area']['delta_slices']} slices saved and "
    f"{pipeline['progress']['delta_rounds']:+d} rounds."
)
