#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1 example through the whole flow.

Parses the three-thread hic program, resolves the producer/consumer
dependency, checks it for deadlock, synthesizes the threads, generates the
arbitrated memory organization, reports area/timing against the XC2VP20,
simulates 200 cycles, and prints a slice of the generated Verilog.

Run:  python examples/quickstart.py
"""

from repro.analysis import check_deadlock
from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.sim import ConsumerLatencyProbe, determinism_report

FIGURE1 = """
thread t1 () {
  int x1, xtmp, x2;
  #consumer{mt1,[t2,y1],[t3,z1]}
  x1 = f(xtmp, x2);
}

thread t2 () {
  int y1, y2;
  #producer{mt1,[t1,x1]}
  y1 = g(x1, y2);
}

thread t3 () {
  int z1, z2;
  #producer{mt1,[t1,x1]}
  z1 = h(x1, z2);
}
"""


def main() -> None:
    print("=== compile (hic -> FSMs -> arbitrated wrapper -> netlist) ===")
    design = compile_design(
        FIGURE1, name="figure1", organization=Organization.ARBITRATED
    )

    for dep in design.checked.dependencies:
        consumers = ", ".join(
            f"{ref.thread}.{ref.variable}" for ref in dep.consumers
        )
        print(
            f"dependency {dep.dep_id}: {dep.producer_thread}.{dep.producer_var}"
            f" -> [{consumers}]  (dn = {dep.dependency_number})"
        )
    print(check_deadlock(design.checked).explain())

    print("\n=== memory allocation ===")
    for key, placement in sorted(design.memory_map.placements.items()):
        where = (
            f"{placement.bram}[{placement.base_address}]"
            if placement.is_bram
            else "register"
        )
        print(f"  {key[0]}.{key[1]:<6} -> {where}")

    print("\n=== implementation estimates (XC2VP20) ===")
    area = design.area_report("bram0")
    print(
        f"wrapper area: LUT={area.luts} FF={area.ffs} slices={area.slices}"
    )
    print(design.timing_report("bram0").render())

    print("\n=== simulation (200 cycles) ===")
    sim = build_simulation(design)
    result = sim.run(200)
    print(result.describe())
    print("t2.y1 =", sim.executors["t2"].env["y1"])
    print("t3.z1 =", sim.executors["t3"].env["z1"])
    probe = ConsumerLatencyProbe(sim.controllers["bram0"])
    print(determinism_report(probe))

    print("\n=== generated Verilog (first 15 lines of the wrapper) ===")
    verilog = design.verilog()
    start = verilog.index("module arbitrated_wrapper")
    print("\n".join(verilog[start:].splitlines()[:15]))


if __name__ == "__main__":
    main()
