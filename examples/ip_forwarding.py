#!/usr/bin/env python3
"""The paper's evaluation application: IP packet forwarding.

Builds the forwarding design for the three paper scenarios (1 producer
with 2, 4, and 8 consumer pseudo-ports), regenerates the Table 1/2 area
rows and the frequency series for both memory organizations, and then runs
live Bernoulli traffic through the 4-consumer arbitrated design to show
packets actually flowing (TTL decrement, LPM decision, egress counts).

Run:  python examples/ip_forwarding.py
"""

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import (
    BernoulliTraffic,
    CORE_FORWARDING_SLICES,
    demo_table,
    format_ip,
    forwarding_functions,
    forwarding_source,
)
from repro.report import area_table, frequency_table

SCENARIOS = (2, 4, 8)


def print_tables() -> None:
    for organization, title in (
        (Organization.ARBITRATED, "Table 1 — arbitrated memory organization"),
        (Organization.EVENT_DRIVEN,
         "Table 2 — event-driven statically scheduled organization"),
    ):
        rows = []
        freq_rows = []
        for consumers in SCENARIOS:
            design = compile_design(
                forwarding_source(consumers, with_io=False),
                organization=organization,
            )
            area = design.area_report("bram0")
            timing = design.timing_report("bram0")
            rows.append((f"1/{consumers}", area.luts, area.ffs, area.slices))
            freq_rows.append(
                (f"1/{consumers}", timing.fmax_mhz, timing.target_mhz, None)
            )
        print(area_table(title, rows).render())
        print(frequency_table("achieved frequency", freq_rows).render())
        overheads = ", ".join(
            f"1/{c}: {100 * r[3] / CORE_FORWARDING_SLICES:.0f}%"
            for c, r in zip(SCENARIOS, rows)
        )
        print(f"overhead vs {CORE_FORWARDING_SLICES}-slice core: {overheads}\n")


def run_traffic() -> None:
    print("=== live traffic through the 1/4 arbitrated design ===")
    table = demo_table()
    design = compile_design(
        forwarding_source(4), organization=Organization.ARBITRATED
    )
    sim = build_simulation(design, functions=forwarding_functions(table))
    generator = BernoulliTraffic(rate=0.06, seed=2006)
    hook = generator.attach(sim.rx["eth_in"])
    sim.kernel.add_pre_cycle_hook(hook)
    result = sim.run(4000)

    print(result.describe())
    print(f"injected {hook.injected} packets, forwarded {sim.tx['eth_out'].count}")
    for cycle, message in sim.tx["eth_out"].messages[:5]:
        decision = table.lookup(message["dst_addr"])
        print(
            f"  cycle {cycle:>4}: dst {format_ip(message['dst_addr'])} "
            f"ttl {message['ttl']} -> port {decision}"
        )


def main() -> None:
    print_tables()
    run_traffic()


if __name__ == "__main__":
    main()
