#!/usr/bin/env python3
"""Static deadlock detection (paper §1).

"Deadlocks are identified statically since the user explicitly specifies
producer(s) and consumer(s)."  This example shows a two-thread program
where each thread blocks on the other's value before producing its own —
caught at compile time with an explanatory cycle — and the corrected
version where each thread produces before it consumes.

Run:  python examples/deadlock_detection.py
"""

from repro.analysis import check_deadlock
from repro.flow import compile_design
from repro.hic import analyze

DEADLOCKED = """
thread ta () {
  int pa, va;
  #producer{db,[tb,pb]}
  va = f(pb);
  #consumer{da,[tb,vb]}
  pa = g(va);
}

thread tb () {
  int pb, vb;
  #producer{da,[ta,pa]}
  vb = f(pa);
  #consumer{db,[ta,va]}
  pb = g(vb);
}
"""

FIXED = """
thread ta () {
  int pa, va;
  #consumer{da,[tb,vb]}
  pa = g(va);
  #producer{db,[tb,pb]}
  va = f(pb);
}

thread tb () {
  int pb, vb;
  #consumer{db,[ta,va]}
  pb = g(vb);
  #producer{da,[ta,pa]}
  vb = f(pa);
}
"""


def main() -> None:
    print("=== deadlocked program ===")
    report = check_deadlock(analyze(DEADLOCKED))
    print(report.explain())

    print("\ncompile_design refuses it:")
    try:
        compile_design(DEADLOCKED)
    except ValueError as error:
        print(f"  ValueError: {error}")

    print("\n=== corrected program (produce before consume) ===")
    report = check_deadlock(analyze(FIXED))
    print(report.explain())
    design = compile_design(FIXED)
    print(
        f"compiles cleanly: {len(design.fsms)} thread FSMs, "
        f"{design.memory_map.bram_count()} BRAM(s)"
    )


if __name__ == "__main__":
    main()
