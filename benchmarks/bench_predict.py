#!/usr/bin/env python3
"""Harness benchmark: analytical-model throughput and predict-prune DSE.

Not a paper experiment — this group tracks the performance-model
subsystem (:mod:`repro.model`, docs/performance_model.md) itself:

* **model evaluation rate**: :func:`repro.model.predict` must sustain
  at least 10^5 configuration evaluations per second — the property
  that makes whole-grid analytical sweeps effectively free;
* **predict-prune quality**: on the committed sweep grid (3
  organizations x banks {1,2,4} x link {1,2,3} x sparse/dense traffic,
  54 points) the prune set at the default margin must contain at most
  25% of the grid while recovering 100% of the *true* simulated Pareto
  frontier, and the pruned campaign's wall time (analytical scoring +
  kept simulations) is compared against simulating everything.

Results land in the ``predict`` section of ``BENCH_sim.json`` — the
schema-/4 addition to the machine-readable artifact CI uploads.  The
frontier-recall leg simulates with demo horizons (shorter than the
validation grid's, which must converge error bounds rather than rank
points); both legs use the same horizons, so the recorded speedup is
apples-to-apples.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core import Organization
from repro.model import (
    DEFAULT_MARGIN,
    ModelParameters,
    evaluate_grid,
    frontier_objectives,
    predict,
    prune,
    sweep_grid,
)
from repro.model.validate import simulate_config
from repro.net import forwarding_source
from repro.obs.exporters import write_bench_json

#: Acceptance floor: analytical evaluations per second.
EVALS_PER_SECOND_TARGET = 100_000

#: Acceptance ceiling: fraction of the grid the prune set may keep.
PRUNE_BUDGET = 0.25

#: Simulation horizons for the frontier-recall leg (demo-sized: they
#: rank points; the validation grid's longer sparse horizon exists to
#: converge *error bounds*, not ranks).
RECALL_CYCLES = {0.02: 6_000, 0.9: 2_000}

BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: The Figure-1 model parameters the committed sweep is built from.
FIGURE1 = ModelParameters(
    organization=Organization.ARBITRATED,
    consumers=2,
    producer_loop=15,
    consumer_loop=5,
    producer_accesses=7,
)


def _committed_grid():
    """The committed 54-point sweep grid (sorted, deterministic)."""
    return sweep_grid(FIGURE1)


@pytest.mark.benchmark(group="predict")
def test_model_evaluation_rate(benchmark):
    """``predict()`` must evaluate >= 10^5 configurations per second.

    Times full predictions (period, throughput, wait, fractions) over
    the committed grid's parameter family, cycling configurations so
    nothing is memoized away.  Updates the ``evals_per_second`` half of
    the ``predict`` section in ``BENCH_sim.json``.
    """
    configs = _committed_grid()
    batch = 2_000

    def run():
        for i in range(batch):
            predict(configs[i % len(configs)])
        return batch

    benchmark.pedantic(run, rounds=3, warmup_rounds=1)

    # Min-of-N wall timing for the recorded rate (the benchmark fixture
    # already reports its own statistics).
    times = []
    for __ in range(3):
        start = time.perf_counter()
        run()
        times.append(time.perf_counter() - start)
    evals_per_second = round(batch / min(times))
    benchmark.extra_info["evals_per_second"] = evals_per_second
    assert evals_per_second >= EVALS_PER_SECOND_TARGET, (
        f"model evaluates {evals_per_second} configs/s, below the "
        f"{EVALS_PER_SECOND_TARGET} floor"
    )

    _update_bench_json(
        evals_per_second=evals_per_second,
        evals_target=EVALS_PER_SECOND_TARGET,
    )


def _simulate_point(params) -> dict:
    """Ground-truth metrics for one grid point (demo horizons)."""
    __, observed = simulate_config(
        forwarding_source(2),
        params.organization,
        params.banks,
        params.traffic_rate,
        RECALL_CYCLES[params.traffic_rate],
        link_latency=params.link_latency,
    )
    return observed


@pytest.mark.benchmark(group="predict")
def test_predict_prune_recall_and_speedup(benchmark):
    """On the committed sweep the prune set must keep <= 25% of the grid
    and contain 100% of the true simulated Pareto frontier.

    Simulates the whole grid once (the expensive baseline the model
    exists to avoid), derives the true frontier from simulated
    throughput/wait plus exact area, and checks every true-frontier
    point survived pruning.  Records the pruned-campaign speedup in the
    ``predict`` section of ``BENCH_sim.json``.
    """
    points = evaluate_grid(_committed_grid())
    kept = prune(points, margin=DEFAULT_MARGIN)

    start = time.perf_counter()
    scored = evaluate_grid(_committed_grid())
    prune(scored, margin=DEFAULT_MARGIN)
    scoring_s = time.perf_counter() - start

    def simulate_kept():
        return {
            index: _simulate_point(points[index].params) for index in kept
        }

    kept_observed = benchmark.pedantic(
        simulate_kept, rounds=1, warmup_rounds=0
    )
    kept_s = scoring_s
    start = time.perf_counter()
    simulate_kept()
    kept_s += time.perf_counter() - start

    start = time.perf_counter()
    observed = {
        point.index: (
            kept_observed[point.index]
            if point.index in kept_observed
            else _simulate_point(point.params)
        )
        for point in points
    }
    # The baseline simulates *every* point; reuse of the kept results
    # above only skews the comparison against the pruned path, so time
    # the skipped majority and scale by the full grid.
    skipped_s = time.perf_counter() - start
    full_s = skipped_s * len(points) / max(1, len(points) - len(kept))

    true_frontier = frontier_objectives(
        [
            (
                -observed[point.index]["throughput"],
                observed[point.index]["consumer_wait"],
                float(point.area),
            )
            for point in points
        ]
    )
    missed = [index for index in true_frontier if index not in kept]
    fraction = len(kept) / len(points)
    recall = 1.0 - len(missed) / max(1, len(true_frontier))
    speedup = full_s / kept_s

    benchmark.extra_info["simulated_fraction"] = round(fraction, 4)
    benchmark.extra_info["frontier_recall"] = recall
    benchmark.extra_info["pruned_speedup"] = round(speedup, 2)
    assert fraction <= PRUNE_BUDGET, (
        f"prune kept {fraction:.0%} of the grid, over the "
        f"{PRUNE_BUDGET:.0%} budget"
    )
    assert not missed, (
        f"true-frontier points {missed} were pruned away "
        f"(margin {DEFAULT_MARGIN})"
    )

    _update_bench_json(
        grid_size=len(points),
        kept=len(kept),
        simulated_fraction=round(fraction, 4),
        prune_budget=PRUNE_BUDGET,
        frontier_recall=recall,
        true_frontier=sorted(true_frontier),
        margin=DEFAULT_MARGIN,
        full_grid_seconds=round(full_s, 4),
        pruned_seconds=round(kept_s, 4),
        pruned_speedup=round(speedup, 2),
    )


def _update_bench_json(**fields) -> None:
    try:
        payload = json.loads(BENCH_JSON_PATH.read_text())
    except (OSError, ValueError):
        payload = {}
    # Keep in lockstep with bench_sim_performance.BENCH_SCHEMA: /4 added
    # this predict section, /6 the scenarios section.
    payload["schema"] = "repro.bench.sim/6"
    section = payload.setdefault("predict", {})
    section.setdefault(
        "workload",
        (
            "committed sweep: figure-1 family, 3 organizations x banks "
            "{1,2,4} x link {1,2,3} x rates {0.02,0.9} (54 points)"
        ),
    )
    section.update(fields)
    write_bench_json(str(BENCH_JSON_PATH), payload)


def main() -> None:
    configs = _committed_grid()
    start = time.perf_counter()
    for params in configs * 40:
        predict(params)
    elapsed = time.perf_counter() - start
    print(f"model: {round(40 * len(configs) / elapsed)} evals/s")
    points = evaluate_grid(configs)
    kept = prune(points, margin=DEFAULT_MARGIN)
    print(
        f"prune: kept {len(kept)}/{len(points)} "
        f"({len(kept) / len(points):.0%}) at margin {DEFAULT_MARGIN}"
    )


if __name__ == "__main__":
    main()
