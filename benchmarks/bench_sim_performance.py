"""Harness benchmark: simulation and compilation throughput.

Not a paper experiment — this group tracks the reproduction's own
performance so regressions in the simulator kernel or the flow driver are
visible: cycles simulated per second for the 4-consumer forwarding design,
full-flow compilation latency, and the telemetry layer's overhead (the
observability budget: < 10% on the fully traced path, a no-op when
disabled).  The overhead test also emits ``BENCH_sim.json`` at the repo
root — the machine-readable artifact CI uploads.
"""

import time
from pathlib import Path

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import (
    BernoulliTraffic,
    demo_table,
    forwarding_functions,
    forwarding_source,
)
from repro.obs.exporters import summary_dict, write_bench_json

CYCLES = 1000

#: Acceptance budget: traced simulation may cost at most this factor of
#: the untraced one.
OVERHEAD_BUDGET = 1.10

BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


@pytest.fixture(scope="module")
def forwarding_design():
    return compile_design(
        forwarding_source(4), organization=Organization.ARBITRATED
    )


@pytest.mark.benchmark(group="harness")
def test_simulation_throughput(benchmark, forwarding_design):
    functions = forwarding_functions(demo_table())

    def run():
        sim = build_simulation(forwarding_design, functions=functions)
        generator = BernoulliTraffic(rate=0.06, seed=1)
        sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
        sim.run(CYCLES)
        return sim

    sim = benchmark(run)
    assert sim.kernel.cycle == CYCLES
    assert sim.tx["eth_out"].count > 0
    mean_s = benchmark.stats.stats.mean
    benchmark.extra_info["cycles_per_second"] = round(CYCLES / mean_s)


@pytest.mark.benchmark(group="harness")
def test_simulation_throughput_with_telemetry(benchmark, forwarding_design):
    functions = forwarding_functions(demo_table())

    def run():
        sim = build_simulation(forwarding_design, functions=functions)
        sim.attach_telemetry()
        generator = BernoulliTraffic(rate=0.06, seed=1)
        sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
        sim.run(CYCLES)
        return sim

    sim = benchmark(run)
    telemetry = sim.telemetry
    assert telemetry.cycles_observed == CYCLES
    assert telemetry.spans.complete_spans()
    mean_s = benchmark.stats.stats.mean
    benchmark.extra_info["cycles_per_second"] = round(CYCLES / mean_s)
    benchmark.extra_info["events_recorded"] = len(telemetry.events)


def _timed_run(design, functions, with_telemetry):
    """One simulation run; returns (seconds spent inside run(), sim)."""
    sim = build_simulation(design, functions=functions)
    if with_telemetry:
        sim.attach_telemetry()
    generator = BernoulliTraffic(rate=0.06, seed=1)
    sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
    start = time.perf_counter()
    sim.run(CYCLES)
    return time.perf_counter() - start, sim


@pytest.mark.benchmark(group="harness")
def test_telemetry_overhead_budget(benchmark, forwarding_design):
    """Tracing + metrics must cost < 10% of the untraced cycles/sec.

    Min-of-N timing on both sides to suppress scheduler noise; the
    benchmark fixture times the traced path, so its numbers land in the
    benchmark report too.  Also writes ``BENCH_sim.json``.
    """
    functions = forwarding_functions(demo_table())
    reps = 7

    def traced():
        return _timed_run(forwarding_design, functions, True)

    # One warmed-up traced round through the benchmark fixture so the
    # traced path shows up in the benchmark report.
    elapsed, sim = benchmark.pedantic(traced, rounds=1, warmup_rounds=1)

    # Interleave the two sides so CPU-frequency drift during the
    # measurement hits both alike; min-of-N suppresses scheduler noise.
    disabled_times = []
    enabled_times = [elapsed]
    for __ in range(reps):
        disabled_times.append(
            _timed_run(forwarding_design, functions, False)[0]
        )
        enabled_times.append(traced()[0])
    disabled = min(disabled_times)
    enabled = min(enabled_times)

    ratio = enabled / disabled
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    benchmark.extra_info["cycles_per_second_disabled"] = round(
        CYCLES / disabled
    )
    benchmark.extra_info["cycles_per_second_enabled"] = round(CYCLES / enabled)
    assert ratio < OVERHEAD_BUDGET, (
        f"telemetry overhead {ratio:.3f}x exceeds {OVERHEAD_BUDGET}x budget"
    )

    payload = {
        "schema": "repro.bench.sim/1",
        "cycles": CYCLES,
        "cycles_per_second_disabled": round(CYCLES / disabled),
        "cycles_per_second_enabled": round(CYCLES / enabled),
        "telemetry_overhead_ratio": round(ratio, 4),
        "overhead_budget": OVERHEAD_BUDGET,
        "telemetry_summary": summary_dict(sim.telemetry),
    }
    write_bench_json(str(BENCH_JSON_PATH), payload)


@pytest.mark.benchmark(group="harness")
def test_compile_flow_latency(benchmark):
    source = forwarding_source(8)

    def run():
        return compile_design(source, organization=Organization.ARBITRATED)

    design = benchmark(run)
    assert design.area_report("bram0").ffs == 66
