"""Harness benchmark: simulation and compilation throughput.

Not a paper experiment — this group tracks the reproduction's own
performance so regressions in the simulator kernel or the flow driver are
visible: cycles simulated per second for the 4-consumer forwarding design,
and full-flow compilation latency.
"""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import (
    BernoulliTraffic,
    demo_table,
    forwarding_functions,
    forwarding_source,
)

CYCLES = 1000


@pytest.fixture(scope="module")
def forwarding_design():
    return compile_design(
        forwarding_source(4), organization=Organization.ARBITRATED
    )


@pytest.mark.benchmark(group="harness")
def test_simulation_throughput(benchmark, forwarding_design):
    functions = forwarding_functions(demo_table())

    def run():
        sim = build_simulation(forwarding_design, functions=functions)
        generator = BernoulliTraffic(rate=0.06, seed=1)
        sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
        sim.run(CYCLES)
        return sim

    sim = benchmark(run)
    assert sim.kernel.cycle == CYCLES
    assert sim.tx["eth_out"].count > 0
    mean_s = benchmark.stats.stats.mean
    benchmark.extra_info["cycles_per_second"] = round(CYCLES / mean_s)


@pytest.mark.benchmark(group="harness")
def test_compile_flow_latency(benchmark):
    source = forwarding_source(8)

    def run():
        return compile_design(source, organization=Organization.ARBITRATED)

    design = benchmark(run)
    assert design.area_report("bram0").ffs == 66
