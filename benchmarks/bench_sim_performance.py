"""Harness benchmark: simulation and compilation throughput.

Not a paper experiment — this group tracks the reproduction's own
performance so regressions in the simulator kernel or the flow driver are
visible: cycles simulated per second for the 4-consumer forwarding design
on both kernel backends, the event-wheel kernel's speedup on the
Figure-1 dependency pattern, full-flow compilation latency, and the
telemetry layer's overhead (the observability budget: < 10% on the fully
traced path, a no-op when disabled).  The cycle-attribution profiler has
the same budget on top of the traced path (its ``profiler`` section is
what bumped the artifact schema to ``repro.bench.sim/3``).  The compiled
per-design backend gets the mirror-image workload: the same Figure-1
pattern under *dense* traffic (rate 0.9), where nothing is skippable
and raw per-cycle cost dominates — with codegen/compile time logged
separately from cached steady-state throughput, since the first build
pays for source generation and ``exec`` while every later build of the
same design is a cache hit.  The overhead and speedup tests emit
``BENCH_sim.json`` at the repo root — the machine-readable artifact CI
uploads; with ``BENCH_ENFORCE_BASELINE=1`` the speedup tests also fail
on a >20% throughput regression (wheel or compiled) against the
committed baseline.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import (
    BernoulliTraffic,
    demo_table,
    forwarding_functions,
    forwarding_source,
)
from repro.obs.exporters import summary_dict, write_bench_json

CYCLES = 1000

#: Acceptance budget: traced simulation may cost at most this factor of
#: the untraced one.
OVERHEAD_BUDGET = 1.10

#: The Figure-1 dependency pattern under system traffic: one producer
#: feeding two consumers through a guarded word (dn=2), driven by sparse
#: packet arrivals.  Long idle stretches between packets are what the
#: event-wheel kernel exists to skip.
FAST_CYCLES = 20_000
FAST_RATE = 0.004

#: The compiled backend's showcase is the opposite regime: the same
#: Figure-1 pattern saturated (rate 0.9), where the wheel finds nothing
#: to skip and per-cycle interpretation cost is everything.
DENSE_RATE = 0.9

#: Acceptance floor for the event-wheel kernel on the sparse workload
#: and for the compiled kernel over the wheel on the dense one
#: (telemetry disabled), and the allowed regression against the
#: committed baseline when ``BENCH_ENFORCE_BASELINE=1``.
SPEEDUP_TARGET = 5.0
BASELINE_TOLERANCE = 0.80

BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"

#: Artifact schema: /3 added the ``profiler`` overhead section (see
#: docs/profiling.md); /4 added the ``predict`` section written by
#: ``bench_predict.py`` (see docs/performance_model.md); /5 added the
#: compiled-kernel dense-workload numbers (``kernels.compiled_*``,
#: including the codegen-vs-cached build-time split; see
#: docs/simulation_kernels.md); /6 added the per-scenario ``scenarios``
#: section written by ``bench_scenarios.py`` (see docs/scenarios.md).
BENCH_SCHEMA = "repro.bench.sim/6"

#: The committed baseline, captured at import time — the tests below
#: rewrite ``BENCH_sim.json``, so read it before any of them run.
try:
    _COMMITTED_BASELINE = json.loads(BENCH_JSON_PATH.read_text())
except (OSError, ValueError):  # first run: no baseline yet
    _COMMITTED_BASELINE = {}


@pytest.fixture(scope="module")
def forwarding_design():
    return compile_design(
        forwarding_source(4), organization=Organization.ARBITRATED
    )


@pytest.mark.benchmark(group="harness")
@pytest.mark.parametrize("kernel", ["reference", "wheel"])
def test_simulation_throughput(benchmark, forwarding_design, kernel):
    functions = forwarding_functions(demo_table())

    def run():
        sim = build_simulation(
            forwarding_design, functions=functions, kernel=kernel
        )
        generator = BernoulliTraffic(rate=0.06, seed=1)
        sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
        sim.run(CYCLES)
        return sim

    sim = benchmark(run)
    assert sim.kernel.cycle == CYCLES
    assert sim.tx["eth_out"].count > 0
    mean_s = benchmark.stats.stats.mean
    benchmark.extra_info["cycles_per_second"] = round(CYCLES / mean_s)
    if kernel == "wheel":
        benchmark.extra_info["cycles_skipped"] = sim.kernel.cycles_skipped


@pytest.mark.benchmark(group="harness")
def test_simulation_throughput_with_telemetry(benchmark, forwarding_design):
    functions = forwarding_functions(demo_table())

    def run():
        sim = build_simulation(forwarding_design, functions=functions)
        sim.attach_telemetry()
        generator = BernoulliTraffic(rate=0.06, seed=1)
        sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
        sim.run(CYCLES)
        return sim

    sim = benchmark(run)
    telemetry = sim.telemetry
    assert telemetry.cycles_observed == CYCLES
    assert telemetry.spans.complete_spans()
    mean_s = benchmark.stats.stats.mean
    benchmark.extra_info["cycles_per_second"] = round(CYCLES / mean_s)
    benchmark.extra_info["events_recorded"] = len(telemetry.events)


def _timed_run(design, functions, with_telemetry, with_profiler=False):
    """One simulation run; returns (seconds spent inside run(), sim)."""
    sim = build_simulation(design, functions=functions)
    if with_profiler:
        sim.attach_profiler()
    elif with_telemetry:
        sim.attach_telemetry()
    generator = BernoulliTraffic(rate=0.06, seed=1)
    sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
    start = time.perf_counter()
    sim.run(CYCLES)
    return time.perf_counter() - start, sim


@pytest.mark.benchmark(group="harness")
def test_telemetry_overhead_budget(benchmark, forwarding_design):
    """Tracing + metrics must cost < 10% of the untraced cycles/sec.

    Min-of-N timing on both sides to suppress scheduler noise; the
    benchmark fixture times the traced path, so its numbers land in the
    benchmark report too.  Also writes ``BENCH_sim.json``.
    """
    functions = forwarding_functions(demo_table())
    reps = 7

    def traced():
        return _timed_run(forwarding_design, functions, True)

    # One warmed-up traced round through the benchmark fixture so the
    # traced path shows up in the benchmark report.
    elapsed, sim = benchmark.pedantic(traced, rounds=1, warmup_rounds=1)

    # Interleave the two sides so CPU-frequency drift during the
    # measurement hits both alike; min-of-N suppresses scheduler noise.
    disabled_times = []
    enabled_times = [elapsed]
    for __ in range(reps):
        disabled_times.append(
            _timed_run(forwarding_design, functions, False)[0]
        )
        enabled_times.append(traced()[0])
    disabled = min(disabled_times)
    enabled = min(enabled_times)

    ratio = enabled / disabled
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    benchmark.extra_info["cycles_per_second_disabled"] = round(
        CYCLES / disabled
    )
    benchmark.extra_info["cycles_per_second_enabled"] = round(CYCLES / enabled)
    assert ratio < OVERHEAD_BUDGET, (
        f"telemetry overhead {ratio:.3f}x exceeds {OVERHEAD_BUDGET}x budget"
    )

    try:
        payload = json.loads(BENCH_JSON_PATH.read_text())
    except (OSError, ValueError):
        payload = {}
    payload.update(
        {
            "schema": BENCH_SCHEMA,
            "cycles": CYCLES,
            "cycles_per_second_disabled": round(CYCLES / disabled),
            "cycles_per_second_enabled": round(CYCLES / enabled),
            "telemetry_overhead_ratio": round(ratio, 4),
            "overhead_budget": OVERHEAD_BUDGET,
            "telemetry_summary": summary_dict(sim.telemetry),
        }
    )
    write_bench_json(str(BENCH_JSON_PATH), payload)


@pytest.mark.benchmark(group="harness")
def test_profiler_overhead_budget(benchmark, forwarding_design):
    """Cycle attribution must cost < 10% on top of the traced path.

    Same interleaved min-of-N protocol as the telemetry budget, but the
    baseline here is telemetry *enabled* — the profiler rides the
    telemetry observer, so its marginal cost is what the budget bounds.
    Shared machines drift several percent between reps, so the budget
    is asserted on the best of up to three measurement attempts: noise
    can push one attempt's minima apart, but a real regression holds
    across all three.  Records the ``profiler`` section of
    ``BENCH_sim.json`` (the schema-/3 addition).
    """
    functions = forwarding_functions(demo_table())
    reps = 10
    attempts = 3

    def profiled():
        return _timed_run(forwarding_design, functions, True, True)

    elapsed, sim = benchmark.pedantic(profiled, rounds=1, warmup_rounds=1)

    # Warm the traced path too before timing — the interleaved min-of-N
    # below assumes both sides run hot.
    for __ in range(2):
        _timed_run(forwarding_design, functions, True)

    ratio = traced = profiled_s = None
    for __ in range(attempts):
        traced_times = []
        profiled_times = []
        for ___ in range(reps):
            traced_times.append(
                _timed_run(forwarding_design, functions, True)[0]
            )
            profiled_times.append(profiled()[0])
        traced = min(traced_times)
        profiled_s = min(profiled_times)
        ratio = profiled_s / traced
        if ratio < OVERHEAD_BUDGET:
            break

    profiler = sim.telemetry.profiler
    conservation = profiler.conservation_report()
    assert conservation["ok"], "profiler attribution must conserve cycles"
    assert profiler.cycles_observed == CYCLES
    benchmark.extra_info["overhead_ratio"] = round(ratio, 4)
    benchmark.extra_info["cycles_per_second_profiled"] = round(
        CYCLES / profiled_s
    )
    assert ratio < OVERHEAD_BUDGET, (
        f"profiler overhead {ratio:.3f}x exceeds {OVERHEAD_BUDGET}x budget"
    )

    state_totals = profiler.ledger.state_totals()
    try:
        payload = json.loads(BENCH_JSON_PATH.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["schema"] = BENCH_SCHEMA
    payload["profiler"] = {
        "cycles": CYCLES,
        "cycles_per_second_traced": round(CYCLES / traced),
        "cycles_per_second_profiled": round(CYCLES / profiled_s),
        "profiler_overhead_ratio": round(ratio, 4),
        "overhead_budget": OVERHEAD_BUDGET,
        "state_cycles": {
            state: count for state, count in sorted(state_totals.items())
        },
        "conservation_ok": conservation["ok"],
    }
    write_bench_json(str(BENCH_JSON_PATH), payload)


def _kernel_timed_run(design, functions, kernel, rate=FAST_RATE):
    """One telemetry-disabled run of the Figure-1-pattern workload."""
    sim = build_simulation(design, functions=functions, kernel=kernel)
    generator = BernoulliTraffic(rate=rate, seed=1)
    sim.kernel.add_pre_cycle_hook(generator.attach(sim.rx["eth_in"]))
    start = time.perf_counter()
    sim.run(FAST_CYCLES)
    return time.perf_counter() - start, sim


@pytest.mark.benchmark(group="harness")
def test_wheel_kernel_speedup(benchmark):
    """The event-wheel kernel must be >= 5x the reference kernel on the
    Figure-1 dependency pattern (1 producer, 2 consumers, dn=2) under
    sparse packet traffic with telemetry disabled — the workload whose
    idle stretches motivated the fast backend.  Updates the ``kernels``
    section of ``BENCH_sim.json`` and, when ``BENCH_ENFORCE_BASELINE=1``,
    fails if wheel throughput regressed >20% against the committed
    baseline.
    """
    design = compile_design(
        forwarding_source(2), organization=Organization.ARBITRATED
    )
    functions = forwarding_functions(demo_table())
    reps = 3

    def wheel():
        return _kernel_timed_run(design, functions, "wheel")

    elapsed, wheel_sim = benchmark.pedantic(wheel, rounds=1, warmup_rounds=1)
    wheel_times = [elapsed]
    reference_times = []
    for __ in range(reps):
        reference_times.append(
            _kernel_timed_run(design, functions, "reference")[0]
        )
        wheel_times.append(wheel()[0])
    reference_s = min(reference_times)
    wheel_s = min(wheel_times)
    speedup = reference_s / wheel_s

    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cycles_skipped"] = wheel_sim.kernel.cycles_skipped
    assert wheel_sim.kernel.cycles_skipped > FAST_CYCLES // 2
    assert speedup >= SPEEDUP_TARGET, (
        f"wheel kernel speedup {speedup:.2f}x below the "
        f"{SPEEDUP_TARGET}x target"
    )

    wheel_cps = round(FAST_CYCLES / wheel_s)
    try:
        payload = json.loads(BENCH_JSON_PATH.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["schema"] = BENCH_SCHEMA
    payload["kernels"] = {
        "workload": (
            "figure-1 dependency pattern: forwarding_source(2), "
            f"rate {FAST_RATE}, {FAST_CYCLES} cycles, telemetry off"
        ),
        "reference_cycles_per_second": round(FAST_CYCLES / reference_s),
        "wheel_cycles_per_second": wheel_cps,
        "wheel_speedup": round(speedup, 2),
        "wheel_cycles_skipped": wheel_sim.kernel.cycles_skipped,
        "speedup_target": SPEEDUP_TARGET,
    }
    write_bench_json(str(BENCH_JSON_PATH), payload)

    if os.environ.get("BENCH_ENFORCE_BASELINE") == "1":
        baseline = _COMMITTED_BASELINE.get("kernels", {}).get(
            "wheel_cycles_per_second"
        )
        assert baseline, "no committed wheel baseline in BENCH_sim.json"
        assert wheel_cps >= BASELINE_TOLERANCE * baseline, (
            f"wheel kernel throughput {wheel_cps} cyc/s regressed more "
            f"than {1 - BASELINE_TOLERANCE:.0%} below the committed "
            f"baseline {baseline} cyc/s"
        )


@pytest.mark.benchmark(group="harness")
def test_compiled_kernel_speedup(benchmark):
    """The compiled backend must be >= 5x the event-wheel kernel on the
    *dense* Figure-1 workload (rate 0.9, telemetry disabled) — the
    regime where the wheel finds nothing to skip and the generated
    straight-line tick function earns its keep.  Codegen honesty: the
    first ``build_simulation`` pays source generation + ``exec``
    compilation + binding, every later build of the same design is an
    in-process cache hit, and both times are logged separately from the
    steady-state cycles/sec so the artifact never launders compile time
    into throughput.  Interleaved min-of-N with up to three attempts
    (the ``test_profiler_overhead_budget`` protocol): shared-machine
    drift can push one attempt's minima apart, a real regression holds
    across all three.  Writes the ``kernels.compiled_*`` keys (the
    schema-/5 addition) and, when ``BENCH_ENFORCE_BASELINE=1``, fails
    on a >20% compiled-throughput regression against the committed
    baseline.
    """
    from repro.sim.compiled import clear_cache, generation_count

    design = compile_design(
        forwarding_source(2), organization=Organization.ARBITRATED
    )
    functions = forwarding_functions(demo_table())
    reps = 3
    attempts = 3

    # Build-time split: first build pays codegen + exec + bind ...
    clear_cache()
    generations = generation_count()
    start = time.perf_counter()
    first_sim = build_simulation(design, functions=functions, kernel="compiled")
    codegen_s = time.perf_counter() - start
    assert generation_count() == generations + 1
    assert first_sim.kernel.bind_error is None
    # ... every subsequent build of the identical design is a cache hit.
    start = time.perf_counter()
    build_simulation(design, functions=functions, kernel="compiled")
    cached_build_s = time.perf_counter() - start
    assert generation_count() == generations + 1

    def compiled():
        return _kernel_timed_run(design, functions, "compiled", DENSE_RATE)

    elapsed, compiled_sim = benchmark.pedantic(
        compiled, rounds=1, warmup_rounds=1
    )
    # Warm the wheel side too — the interleaved min-of-N assumes both
    # sides run hot.
    _kernel_timed_run(design, functions, "wheel", DENSE_RATE)

    speedup = wheel_s = compiled_s = None
    for attempt in range(attempts):
        wheel_times = []
        compiled_times = [elapsed] if attempt == 0 else []
        for ___ in range(reps):
            wheel_times.append(
                _kernel_timed_run(design, functions, "wheel", DENSE_RATE)[0]
            )
            compiled_times.append(compiled()[0])
        wheel_s = min(wheel_times)
        compiled_s = min(compiled_times)
        speedup = wheel_s / compiled_s
        if speedup >= SPEEDUP_TARGET:
            break

    # Every benchmarked cycle must have come out of the generated tick
    # function — a silent interpreter fallback would benchmark nothing.
    assert compiled_sim.kernel.cycles_compiled == FAST_CYCLES
    assert compiled_sim.kernel.cycles_interpreted == 0

    benchmark.extra_info["speedup_vs_wheel"] = round(speedup, 2)
    benchmark.extra_info["codegen_seconds"] = round(codegen_s, 4)
    assert speedup >= SPEEDUP_TARGET, (
        f"compiled kernel speedup {speedup:.2f}x over the wheel is below "
        f"the {SPEEDUP_TARGET}x target"
    )

    compiled_cps = round(FAST_CYCLES / compiled_s)
    try:
        payload = json.loads(BENCH_JSON_PATH.read_text())
    except (OSError, ValueError):
        payload = {}
    payload["schema"] = BENCH_SCHEMA
    payload.setdefault("kernels", {}).update(
        {
            "dense_workload": (
                "figure-1 dependency pattern: forwarding_source(2), "
                f"rate {DENSE_RATE}, {FAST_CYCLES} cycles, telemetry off"
            ),
            "wheel_dense_cycles_per_second": round(FAST_CYCLES / wheel_s),
            "compiled_cycles_per_second": compiled_cps,
            "compiled_speedup_vs_wheel": round(speedup, 2),
            "compiled_codegen_seconds": round(codegen_s, 4),
            "compiled_cached_build_seconds": round(cached_build_s, 4),
            "compiled_speedup_target": SPEEDUP_TARGET,
        }
    )
    write_bench_json(str(BENCH_JSON_PATH), payload)

    if os.environ.get("BENCH_ENFORCE_BASELINE") == "1":
        baseline = _COMMITTED_BASELINE.get("kernels", {}).get(
            "compiled_cycles_per_second"
        )
        assert baseline, "no committed compiled baseline in BENCH_sim.json"
        assert compiled_cps >= BASELINE_TOLERANCE * baseline, (
            f"compiled kernel throughput {compiled_cps} cyc/s regressed "
            f"more than {1 - BASELINE_TOLERANCE:.0%} below the committed "
            f"baseline {baseline} cyc/s"
        )


@pytest.mark.benchmark(group="harness")
def test_compile_flow_latency(benchmark):
    source = forwarding_source(8)

    def run():
        return compile_design(source, organization=Organization.ARBITRATED)

    design = benchmark(run)
    assert design.area_report("bram0").ffs == 66
