"""E8 — §1 motivation: memory-centric wrappers vs hand-built locks.

The paper motivates both organizations against "shared memory abstractions
based on locks and mutual exclusions": the guarded ports give a lock-free
programming abstraction where a guarded access costs one granted cycle.
This bench runs the same forwarding workload on the arbitrated wrapper and
on the lock/flag baseline and compares completed produce-consume rounds,
per-access overhead, and spin waste.
"""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import forwarding_source
from repro.report import Table

CYCLES = 2000
CONSUMERS = 4


def run_pair():
    results = {}
    for organization in (Organization.ARBITRATED, Organization.LOCK_BASELINE):
        design = compile_design(
            forwarding_source(CONSUMERS, with_io=False),
            organization=organization,
        )
        sim = build_simulation(design)
        sim.run(CYCLES)
        rounds = sim.executors["egress0"].stats.rounds_completed
        controller = sim.controllers["bram0"]
        results[organization.value] = (rounds, controller)
    return results


@pytest.mark.benchmark(group="baseline")
def test_lock_baseline_comparison(benchmark):
    results = benchmark(run_pair)

    arb_rounds, arb_controller = results["arbitrated"]
    lock_rounds, lock_controller = results["lock_baseline"]
    stats = lock_controller.stats

    table = Table(
        f"produce-consume throughput over {CYCLES} cycles "
        f"(1 producer, {CONSUMERS} consumers)",
        ["implementation", "rounds", "notes"],
    )
    table.add_row(
        "arbitrated wrapper",
        arb_rounds,
        "guarded access = 1 granted cycle",
    )
    table.add_row(
        "lock baseline",
        lock_rounds,
        f"{stats.overhead_per_access:.1f} overhead cycles/access, "
        f"{stats.spin_cycles} spin cycles",
    )
    print()
    print(table.render())

    speedup = arb_rounds / max(1, lock_rounds)
    print(f"wrapper speedup over locks: {speedup:.1f}x")

    # The paper's wrappers must decisively beat the lock protocol.
    assert arb_rounds > 2 * lock_rounds
    assert stats.overhead_per_access >= 3.0
    assert stats.spin_cycles > 0

    # And the wrapper's guarded accesses carry no lock traffic at all:
    # every granted port-C/D access is a useful data transfer.
    guarded = [
        s for s in arb_controller.latency_samples if s.port in ("C", "D")
    ]
    assert len(guarded) >= arb_rounds * (CONSUMERS + 1) - (CONSUMERS + 1)

    benchmark.extra_info["speedup"] = f"{speedup:.1f}x"
    benchmark.extra_info["lock overhead/access"] = round(
        stats.overhead_per_access, 2
    )
