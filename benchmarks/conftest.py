"""Shared helpers for the benchmark harness.

Each benchmark file regenerates one table/figure/claim of the paper's
evaluation (see DESIGN.md §4 for the experiment index).  Benchmarks both
*time* the reproduction step (pytest-benchmark) and *record* the measured
values next to the paper's, via ``benchmark.extra_info`` — so a benchmark
run doubles as the data source for EXPERIMENTS.md.
"""

import pytest

#: The paper's evaluation scenarios: 1 producer with N consumers.
SCENARIOS = (2, 4, 8)

#: §4 in-text achieved frequencies (MHz).  The 8-consumer arbitrated value
#: is corrupted in the available paper text; the paper targeted 125 MHz
#: and met it, so we carry 125 as the conservative reading.
PAPER_FMAX = {
    "arbitrated": {2: 158.0, 4: 130.0, 8: 125.0},
    "event_driven": {2: 177.0, 4: 136.0, 8: 129.0},
}

#: §4: the arbitrated baseline's constant flip-flop count.
PAPER_BASELINE_FFS = 66

#: §4: core forwarding function and whole-application slice counts.
PAPER_CORE_SLICES = 1000
PAPER_APP_SLICES = 5430

#: §4: "the area overhead can vary from 5-20%".
PAPER_OVERHEAD_BAND = (0.05, 0.20)


@pytest.fixture
def scenarios():
    return SCENARIOS
