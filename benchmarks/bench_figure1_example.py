"""E6 — Figure 1: the paper's example program through the full flow.

The figure is a pseudo-example, not a measurement; reproducing it means
the verbatim program (modulo whitespace) compiles, is statically deadlock
free, simulates correctly under both organizations, and the generated
wrapper hierarchy matches the Figure 2/3 block structure.
"""

import pytest

from repro.analysis import check_deadlock
from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.sim import default_intrinsic

FIGURE1 = """
thread t1 () {
  int x1, xtmp, x2;
  #consumer{mt1,[t2,y1],[t3,z1]}
  x1 = f(xtmp, x2);
}
thread t2 () {
  int y1, y2;
  #producer{mt1,[t1,x1]}
  y1 = g(x1, y2);
}
thread t3 () {
  int z1, z2;
  #producer{mt1,[t1,x1]}
  z1 = h(x1, z2);
}
"""


def full_flow():
    outcomes = {}
    for organization in (Organization.ARBITRATED, Organization.EVENT_DRIVEN):
        design = compile_design(FIGURE1, organization=organization)
        sim = build_simulation(design)
        sim.run(300)
        outcomes[organization.value] = (
            design,
            sim.executors["t2"].env["y1"],
            sim.executors["t3"].env["z1"],
        )
    return outcomes


@pytest.mark.benchmark(group="figure1")
def test_figure1_example(benchmark):
    outcomes = benchmark(full_flow)

    design = outcomes["arbitrated"][0]
    report = check_deadlock(design.checked)
    assert not report.deadlocked

    dep = design.checked.dependencies[0]
    assert dep.dep_id == "mt1"
    assert dep.dependency_number == 2

    # Dataflow correctness, identical across organizations.
    f, g, h = (default_intrinsic(n) for n in "fgh")
    expected = (g(f(0, 0), 0), h(f(0, 0), 0))
    for org, (__, y1, z1) in outcomes.items():
        assert (y1, z1) == expected, org

    # Figure 2 structure: BRAM + dependency list + arbiters in the wrapper.
    hierarchy = design.hierarchy()
    print()
    print(hierarchy)
    for expected_block in ("arbitrated_wrapper", "dep_row", "arb_c", "bram"):
        assert expected_block in hierarchy

    # Figure 3 structure for the event-driven design.
    ed_design = outcomes["event_driven"][0]
    ed_hierarchy = ed_design.hierarchy()
    for expected_block in ("event_driven_wrapper", "b_addr_mux", "select_reg"):
        assert expected_block in ed_hierarchy

    benchmark.extra_info["dependency"] = (
        f"{dep.producer_thread}.{dep.producer_var} -> "
        f"{', '.join(r.thread for r in dep.consumers)} (dn=2)"
    )
