"""E2 — Table 2: required area for the event-driven statically scheduled
memory organization.

Regenerates the Table 2 rows from the generated mux/demux + selection
logic netlist.  The paper's exact cell values did not survive in the
available text; the checked properties are the structural ones: area grows
with the slot count, and the organization stays lighter than the
arbitrated wrapper (no CAM, no arbiters) at every scenario.
"""

import pytest

from repro.core import Organization
from repro.flow import compile_design
from repro.net import forwarding_source
from repro.report import area_table

from conftest import SCENARIOS


def table2_rows():
    rows = []
    for consumers in SCENARIOS:
        design = compile_design(
            forwarding_source(consumers, with_io=False),
            organization=Organization.EVENT_DRIVEN,
        )
        report = design.area_report("bram0")
        rows.append((f"1/{consumers}", report.luts, report.ffs, report.slices))
    return rows


def arbitrated_rows():
    rows = []
    for consumers in SCENARIOS:
        design = compile_design(
            forwarding_source(consumers, with_io=False),
            organization=Organization.ARBITRATED,
        )
        report = design.area_report("bram0")
        rows.append((f"1/{consumers}", report.luts, report.ffs, report.slices))
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_eventdriven_area(benchmark):
    rows = benchmark(table2_rows)

    print()
    print(area_table(
        "Table 2 — required area, event-driven statically scheduled "
        "memory organization",
        rows,
    ).render())

    luts = [row[1] for row in rows]
    slices = [row[3] for row in rows]
    assert luts[0] < luts[1] < luts[2]
    assert slices[0] < slices[1] < slices[2]

    for ed_row, arb_row in zip(rows, arbitrated_rows()):
        assert ed_row[1] < arb_row[1], "event-driven should need fewer LUTs"
        assert ed_row[2] < arb_row[2], "event-driven should need fewer FFs"

    for (scenario, lut, ff, slc) in rows:
        benchmark.extra_info[f"{scenario} LUT/FF/slices"] = f"{lut}/{ff}/{slc}"
