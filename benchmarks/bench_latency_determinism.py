"""E5 — §3.1/§3.2 determinism comparison.

"The latency of consumer read accesses once the corresponding producer
write happens is not deterministic for the arbitrated memory
organization" — the arbitration "will determine the particular delay once
the write happens", especially when "more than one producer-consumer pairs
are mapped to the same BRAM structure".  The event-driven organization
makes that latency a compile-time constant (the consumer's slot rank).

The bench simulates three producer/consumer pairs sharing one BRAM under
both organizations and measures every consumer's post-write latency
distribution.
"""

import pytest

from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import multi_pair_source
from repro.report import Table
from repro.sim.probes import PostWriteLatencyProbe

CYCLES = 3000
PAIRS = 3
CONSUMERS_PER_PAIR = 2


def run_study():
    probes = {}
    for organization in (Organization.ARBITRATED, Organization.EVENT_DRIVEN):
        design = compile_design(
            multi_pair_source(PAIRS, CONSUMERS_PER_PAIR),
            organization=organization,
        )
        sim = build_simulation(design)
        sim.run(CYCLES)
        probes[organization.value] = PostWriteLatencyProbe(
            sim.controllers["bram0"]
        )
    return probes


@pytest.mark.benchmark(group="latency")
def test_latency_determinism(benchmark):
    probes = benchmark(run_study)

    table = Table(
        f"post-write consumer-read latency ({PAIRS} pairs on one BRAM, "
        f"{CYCLES} cycles)",
        ["organization", "consumer", "mean", "max", "jitter"],
    )
    for org, probe in probes.items():
        for summary in probe.summaries():
            table.add_row(
                org,
                summary.thread,
                f"{summary.mean_wait:.2f}",
                summary.max_wait,
                f"{summary.jitter:.2f}",
            )
    print()
    print(table.render())

    arbitrated = probes["arbitrated"]
    event_driven = probes["event_driven"]

    # The §3.2 guarantee: every consumer's post-write latency is fixed.
    assert event_driven.all_deterministic()
    assert event_driven.max_jitter() == 0.0
    # Each consumer reads at exactly its slot rank.
    for summary in event_driven.summaries():
        rank = int(summary.thread.split("_")[-1]) + 1
        assert set(summary.waits) == {rank}

    # The §3.1 observation: arbitration makes the latency variable.
    assert not arbitrated.all_deterministic()
    assert arbitrated.max_jitter() > 0.0

    benchmark.extra_info["arbitrated max jitter (cycles)"] = round(
        arbitrated.max_jitter(), 3
    )
    benchmark.extra_info["event_driven max jitter (cycles)"] = 0.0
