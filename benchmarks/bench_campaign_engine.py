#!/usr/bin/env python3
"""Harness benchmark: campaign-engine parallel speedup and chaos overhead.

Not a paper experiment — this group tracks the fault-tolerant campaign
engine (:mod:`repro.campaign`) itself: wall-clock speedup of a chaos
campaign fanned across ``os.cpu_count()`` crash-isolated workers versus
the serial path, and the overlap the engine achieves on a blocking
workload even on a single core.  Both runs inject a mid-campaign worker
crash (retried and recovered by the engine), so the measured numbers are
for the *robust* path, not a best-case one.  Results land in the
``campaign`` section of ``BENCH_sim.json`` — the machine-readable
artifact CI uploads.

Acceptance: with ``N = min(cpu_count, runs)`` workers the chaos campaign
must finish in at most ``1 / (0.6 * N)`` of the serial wall time (i.e.
speedup >= 0.6*N), while producing a byte-identical merged report.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.campaign import EngineConfig, RunSpec, run_matrix
from repro.campaign.tasks import busy_task, sleep_task
from repro.obs.exporters import write_bench_json

#: Runs in the chaos campaign; the crash is injected at this run index.
RUNS = 8
CHAOS_INDEX = 3

#: CPU-burn iterations per run — big enough that fork/IPC overhead is
#: amortized, small enough that the serial baseline stays cheap.
ITERATIONS = 600_000

#: Required fraction of ideal linear speedup at N workers.
SPEEDUP_FRACTION = 0.6

#: Blocking-workload overlap probe: runs x seconds each, 2 workers.
SLEEP_RUNS = 6
SLEEP_SECONDS = 0.15

BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def _chaos_specs() -> list:
    return [
        RunSpec(index=index, payload={"iterations": ITERATIONS})
        for index in range(RUNS)
    ]


def _run_chaos(workers: int):
    """One chaos campaign: CPU-bound runs with an injected worker crash."""
    config = EngineConfig(
        workers=workers,
        retries=2,
        backoff_base=0.0,
        chaos=((CHAOS_INDEX, "crash"),),
    )
    start = time.perf_counter()
    report = run_matrix(busy_task, _chaos_specs(), config)
    return time.perf_counter() - start, report


@pytest.mark.benchmark(group="campaign")
def test_campaign_parallel_speedup(benchmark):
    """A chaos campaign at ``cpu_count`` workers must reach at least
    60% of ideal linear speedup over the serial path, with an identical
    merged report.  Updates the ``campaign`` section of
    ``BENCH_sim.json``.
    """
    cpu_count = os.cpu_count() or 1
    workers = min(cpu_count, RUNS)
    # Chaos fires only inside worker processes (an in-parent os._exit
    # would kill the campaign itself), so the parallel leg always uses
    # at least two workers; the speedup *target* stays CPU-based.
    engine_workers = max(2, workers)

    serial_times, parallel_times = [], []

    def parallel():
        elapsed, report = _run_chaos(engine_workers)
        parallel_times.append(elapsed)
        return report

    parallel_report = benchmark.pedantic(parallel, rounds=1, warmup_rounds=0)
    serial_elapsed, serial_report = _run_chaos(1)
    serial_times.append(serial_elapsed)
    for __ in range(2):
        serial_times.append(_run_chaos(1)[0])
        parallel()

    serial_s = min(serial_times)
    parallel_s = min(parallel_times)
    speedup = serial_s / parallel_s
    target = SPEEDUP_FRACTION * workers

    # The injected crash was absorbed and retried, every run finished
    # ok, and the merged outcomes are identical however the work was
    # fanned (attempt counts differ by design: the crashed run took 2).
    for report in (serial_report, parallel_report):
        assert report.completed == RUNS
        assert all(result.ok for result in report.results)
    assert parallel_report.crashed_attempts >= 1
    assert parallel_report.retried >= 1
    merged = lambda report: [  # noqa: E731
        (r.index, r.outcome, r.value, r.error) for r in report.results
    ]
    assert merged(serial_report) == merged(parallel_report)

    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["workers"] = engine_workers
    assert speedup >= target, (
        f"campaign speedup {speedup:.2f}x at {workers} workers below the "
        f"{target:.2f}x target (0.6 * {workers})"
    )

    # Overlap probe: on a blocking workload the engine overlaps runs
    # even on a single core (workers wait concurrently, not in line).
    sleep_specs = [
        RunSpec(index=index, payload={"seconds": SLEEP_SECONDS})
        for index in range(SLEEP_RUNS)
    ]
    start = time.perf_counter()
    run_matrix(sleep_task, sleep_specs, EngineConfig(workers=1))
    sleep_serial_s = time.perf_counter() - start
    start = time.perf_counter()
    run_matrix(sleep_task, sleep_specs, EngineConfig(workers=2))
    sleep_parallel_s = time.perf_counter() - start
    overlap = sleep_serial_s / sleep_parallel_s

    try:
        payload = json.loads(BENCH_JSON_PATH.read_text())
    except (OSError, ValueError):
        payload = {}
    # Keep in lockstep with bench_sim_performance.BENCH_SCHEMA: /4 added
    # the analytical-model predict section, /6 the scenarios section.
    payload["schema"] = "repro.bench.sim/6"
    payload["campaign"] = {
        "workload": (
            f"chaos campaign: {RUNS} cpu-bound runs "
            f"({ITERATIONS} iterations each), worker crash injected at "
            f"run {CHAOS_INDEX} and retried"
        ),
        "cpu_count": cpu_count,
        "workers": engine_workers,
        "runs": RUNS,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(speedup, 2),
        "speedup_target": round(target, 2),
        "sleep_overlap_speedup_2workers": round(overlap, 2),
    }
    write_bench_json(str(BENCH_JSON_PATH), payload)


def main() -> None:
    cpu_count = os.cpu_count() or 1
    workers = max(2, min(cpu_count, RUNS))
    serial_s, serial_report = _run_chaos(1)
    parallel_s, parallel_report = _run_chaos(workers)
    print(
        f"chaos campaign ({RUNS} runs, crash at #{CHAOS_INDEX}): "
        f"serial {serial_s:.3f}s, {workers} workers {parallel_s:.3f}s, "
        f"speedup {serial_s / parallel_s:.2f}x"
    )
    print(
        f"retried={parallel_report.retried} "
        f"crashed_attempts={parallel_report.crashed_attempts} "
        f"completed={parallel_report.completed}/{RUNS}"
    )


if __name__ == "__main__":
    main()
