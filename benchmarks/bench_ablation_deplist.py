"""E7 — §6 future-work ablation: dependency-list size.

"We have not yet investigated the impact of large amount of data
dependencies on the size of list in arbitrated memory organization and
this is part of current research."

This ablation performs that investigation on the reproduction: sweep the
dependency-list capacity from 2 to 32 entries and measure the arbitrated
wrapper's area and achievable frequency.  Expected outcome: FF cost grows
linearly (each entry stores an address, counter, and valid bit), LUT cost
grows with the CAM comparators, and fmax degrades slowly (the CAM match is
a parallel compare, so only its OR-tree deepens).
"""

import pytest

from repro.fpga import estimate_area, estimate_timing
from repro.report import Table
from repro.rtl import WrapperParams, generate_arbitrated_wrapper

ENTRY_SWEEP = (2, 4, 8, 16, 32)
CONSUMERS = 4


def sweep():
    rows = []
    for entries in ENTRY_SWEEP:
        module = generate_arbitrated_wrapper(
            WrapperParams(consumers=CONSUMERS, deplist_entries=entries)
        )
        area = estimate_area(module)
        timing = estimate_timing(module)
        rows.append((entries, area.luts, area.ffs, area.slices,
                     timing.fmax_mhz))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_deplist_size(benchmark):
    rows = benchmark(sweep)

    table = Table(
        f"dependency-list capacity sweep (arbitrated, {CONSUMERS} consumers)",
        ["entries", "LUT", "FF", "slices", "fmax (MHz)"],
    )
    for entries, luts, ffs, slices, fmax in rows:
        table.add_row(entries, luts, ffs, slices, f"{fmax:.0f}")
    print()
    print(table.render())

    entries = [row[0] for row in rows]
    luts = [row[1] for row in rows]
    ffs = [row[2] for row in rows]
    fmax = [row[4] for row in rows]

    # FF growth is linear in entries: address(9) + counter(4) + valid(1).
    ff_deltas = [
        (f2 - f1) / (e2 - e1)
        for (e1, f1), (e2, f2) in zip(zip(entries, ffs), zip(entries[1:], ffs[1:]))
    ]
    assert all(delta == ff_deltas[0] for delta in ff_deltas)
    assert ff_deltas[0] == 14

    # LUTs grow monotonically with CAM size; frequency never improves.
    assert luts == sorted(luts)
    assert all(a >= b for a, b in zip(fmax, fmax[1:]))

    # Even a 32-entry list should keep the design above the 125 MHz target.
    assert fmax[-1] >= 125.0

    benchmark.extra_info["ff per entry"] = 14
    benchmark.extra_info["fmax at 32 entries"] = round(fmax[-1])
