"""Harness benchmark: per-scenario throughput under both synthesis modes.

Not a paper experiment — this group tracks the scenario catalogue's
end-to-end throughput so regressions in the channel-classification pass
or the FIFO controller are visible.  Every catalogued scenario
(``repro.scenarios``) is run for a fixed cycle budget under both
``channel_synthesis`` modes on the event-wheel kernel, recording

- sink-thread rounds completed (deterministic — the progress metric the
  scenario report uses), and
- wall-clock simulated cycles per second (machine-dependent, logged for
  trend lines only),

into the ``scenarios`` section of ``BENCH_sim.json`` — the schema-/6
addition to the machine-readable artifact CI uploads from the
``scenario-smoke`` job.  The determinism claim is load-bearing: the
rounds numbers double as a coarse cross-machine regression oracle, so
the test asserts the one catalogued relationship that motivated the
lowering — FIFO synthesis must not reduce pipeline progress.
"""

import json
import time
from pathlib import Path

import pytest

from repro.obs.exporters import write_bench_json
from repro.scenarios import (
    CHANNEL_SYNTHESIS_MODES,
    SCENARIO_NAMES,
    build_scenario_simulation,
    get_scenario,
)

CYCLES = 500

BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"


def _scenario_cell(scenario, mode):
    """One timed run; returns (seconds, design, sim)."""
    design, sim = build_scenario_simulation(
        scenario, channel_synthesis=mode, kernel="wheel"
    )
    start = time.perf_counter()
    sim.run(CYCLES)
    return time.perf_counter() - start, design, sim


@pytest.mark.benchmark(group="harness")
def test_scenario_throughput_matrix():
    """Record rounds-per-budget and cycles/sec for every scenario x mode.

    Rounds completed are byte-deterministic per (scenario, mode) cell;
    wall-clock throughput is informational.  Writes the ``scenarios``
    section of ``BENCH_sim.json``.
    """
    section = {
        "cycles": CYCLES,
        "kernel": "wheel",
        "workload": (
            "scenario catalogue: "
            f"{', '.join(SCENARIO_NAMES)}; {CYCLES} cycles each, "
            "both channel-synthesis modes, telemetry off"
        ),
    }
    for name in SCENARIO_NAMES:
        scenario = get_scenario(name)
        cell = {}
        for mode in CHANNEL_SYNTHESIS_MODES:
            elapsed, design, sim = _scenario_cell(scenario, mode)
            sink_rounds = {
                sink: sim.executors[sink].stats.rounds_completed
                for sink in scenario.sink_threads
            }
            cell[mode] = {
                "cycles_per_second": round(CYCLES / elapsed),
                "fifo_channels": len(design.memory_map.fifo_names),
                "sink_rounds": sink_rounds,
                "sink_rounds_min": min(sink_rounds.values()),
            }
        cell["delta_rounds"] = (
            cell["fifo"]["sink_rounds_min"]
            - cell["guarded"]["sink_rounds_min"]
        )
        section[name] = cell

    # The catalogued relationship the lowering exists for: on the pure
    # pipeline, decoupling the stages must never cost progress.
    assert section["pipeline"]["delta_rounds"] >= 0, (
        "FIFO synthesis reduced pipeline progress: "
        f"{section['pipeline']}"
    )
    # And the classifier must actually have lowered something there.
    assert section["pipeline"]["fifo"]["fifo_channels"] > 0

    try:
        payload = json.loads(BENCH_JSON_PATH.read_text())
    except (OSError, ValueError):
        payload = {}
    # Keep in lockstep with bench_sim_performance.BENCH_SCHEMA: /6 added
    # this ``scenarios`` section.
    payload["schema"] = "repro.bench.sim/6"
    payload["scenarios"] = section
    write_bench_json(str(BENCH_JSON_PATH), payload)
