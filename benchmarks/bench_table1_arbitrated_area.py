"""E1 — Table 1: required area for the arbitrated memory organization.

Regenerates the paper's Table 1 rows (P/C = 1/2, 1/4, 1/8; LUT/FF/slices
per BRAM wrapper) from the generated netlist, and checks the two facts of
the table that survive in the paper text: the constant 66-FF baseline and
the LUT-only growth with consumer pseudo-ports.
"""

import pytest

from repro.core import Organization
from repro.flow import compile_design
from repro.net import forwarding_source
from repro.report import area_table

from conftest import PAPER_BASELINE_FFS, SCENARIOS


def table1_rows():
    rows = []
    for consumers in SCENARIOS:
        design = compile_design(
            forwarding_source(consumers, with_io=False),
            organization=Organization.ARBITRATED,
        )
        report = design.area_report("bram0")
        rows.append((f"1/{consumers}", report.luts, report.ffs, report.slices))
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_arbitrated_area(benchmark):
    rows = benchmark(table1_rows)

    print()
    print(area_table(
        "Table 1 — required area, arbitrated memory organization", rows
    ).render())

    # Paper fact 1: "constant flip-flop count ... 66 flip-flops".
    ffs = [row[2] for row in rows]
    assert ffs == [PAPER_BASELINE_FFS] * 3

    # Paper fact 2: pseudo-port muxing adds LUTs (and slices) only.
    luts = [row[1] for row in rows]
    slices = [row[3] for row in rows]
    assert luts[0] < luts[1] < luts[2]
    assert slices[0] < slices[1] < slices[2]

    for (scenario, lut, ff, slc) in rows:
        benchmark.extra_info[f"{scenario} LUT/FF/slices"] = f"{lut}/{ff}/{slc}"
    benchmark.extra_info["paper FF (all rows)"] = PAPER_BASELINE_FFS
