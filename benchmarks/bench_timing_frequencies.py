"""E3 — §4 in-text frequency series.

The paper: against a 125 MHz target, the arbitrated organization achieved
158 / 130 / ~125 MHz and the event-driven organization 177 / 136 / 129 MHz
for 2 / 4 / 8 consumers.  This bench regenerates the series from the
critical paths of the generated wrappers and checks the shape claims:
monotone decrease with consumers, event-driven ahead everywhere, its
advantage narrowing, and every point meeting the 125 MHz target.
"""

import pytest

from repro.core import Organization
from repro.flow import compile_design
from repro.fpga import PAPER_TARGET_MHZ
from repro.net import forwarding_source
from repro.report import frequency_table, shape_verdict

from conftest import PAPER_FMAX, SCENARIOS

ORGS = {
    "arbitrated": Organization.ARBITRATED,
    "event_driven": Organization.EVENT_DRIVEN,
}


def frequency_series():
    series = {}
    for label, organization in ORGS.items():
        series[label] = [
            compile_design(
                forwarding_source(consumers, with_io=False),
                organization=organization,
            ).timing_report("bram0").fmax_mhz
            for consumers in SCENARIOS
        ]
    return series


@pytest.mark.benchmark(group="timing")
def test_frequency_series(benchmark):
    series = benchmark(frequency_series)

    print()
    for label, values in series.items():
        rows = [
            (f"1/{c}", fmax, PAPER_TARGET_MHZ, PAPER_FMAX[label][c])
            for c, fmax in zip(SCENARIOS, values)
        ]
        print(frequency_table(f"achieved frequency — {label}", rows).render())
        verdict = shape_verdict(
            [PAPER_FMAX[label][c] for c in SCENARIOS], values
        )
        print(f"shape vs paper: {verdict}\n")
        benchmark.extra_info[f"{label} fmax"] = [round(v) for v in values]
        benchmark.extra_info[f"{label} paper"] = [
            PAPER_FMAX[label][c] for c in SCENARIOS
        ]

        # Shape claims.
        assert values[0] > values[1] > values[2]
        assert all(v >= PAPER_TARGET_MHZ for v in values)
        assert verdict in ("match", "shape-match")

    for arb, ed in zip(series["arbitrated"], series["event_driven"]):
        assert ed > arb
    # The event-driven advantage narrows with consumer count (paper:
    # 1.12x at 2 consumers down to ~1.03x at 8).
    ratios = [
        ed / arb
        for arb, ed in zip(series["arbitrated"], series["event_driven"])
    ]
    assert ratios[0] > ratios[-1] > 1.0
