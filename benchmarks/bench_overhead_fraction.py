"""E4 — §4 overhead claim.

"The total amount of area devoted to the core functionality of the IP
forwarding is about 1000 slices.  Thus depending upon the partitioning
(of threads) and complexity of the functions the area overhead can vary
from 5-20%."  The two-port application totalled 5430 slices.

This bench computes the wrapper-slices / core-slices fraction for every
scenario of both organizations and checks it lands in (or below) the
paper's band, plus that the whole application still fits the XC2VP20.
"""

import pytest

from repro.core import Organization
from repro.flow import compile_design
from repro.fpga import XC2VP20, overhead_fraction
from repro.net import forwarding_source
from repro.report import Table

from conftest import (
    PAPER_APP_SLICES,
    PAPER_CORE_SLICES,
    PAPER_OVERHEAD_BAND,
    SCENARIOS,
)


def overheads():
    results = {}
    for organization in (Organization.ARBITRATED, Organization.EVENT_DRIVEN):
        for consumers in SCENARIOS:
            design = compile_design(
                forwarding_source(consumers, with_io=False),
                organization=organization,
            )
            report = design.area_report("bram0")
            results[(organization.value, consumers)] = (
                report.slices,
                overhead_fraction(report, PAPER_CORE_SLICES),
            )
    return results


@pytest.mark.benchmark(group="overhead")
def test_overhead_fraction(benchmark):
    results = benchmark(overheads)

    low, high = PAPER_OVERHEAD_BAND
    table = Table(
        f"wrapper overhead vs the {PAPER_CORE_SLICES}-slice core function",
        ["organization", "P/C", "wrapper slices", "overhead", "in 5-20% band"],
    )
    for (org, consumers), (slices, fraction) in sorted(results.items()):
        table.add_row(
            org,
            f"1/{consumers}",
            slices,
            f"{100 * fraction:.1f}%",
            "yes" if low <= fraction <= high else "below" if fraction < low
            else "ABOVE",
        )
    print()
    print(table.render())

    # The arbitrated organization (the paper's Table 1 design) must land in
    # the band; the event-driven one may be lighter (band or below) but
    # never above it.
    for (org, consumers), (__, fraction) in results.items():
        if org == "arbitrated":
            assert low <= fraction <= high, (org, consumers, fraction)
        else:
            assert fraction <= high, (org, consumers, fraction)

    # The full application still fits the paper's device.
    worst_wrapper = max(slices for slices, __ in results.values())
    assert XC2VP20.fits(PAPER_APP_SLICES + worst_wrapper, brams=1)
    benchmark.extra_info["band"] = "5-20%"
    benchmark.extra_info["overheads"] = {
        f"{org} 1/{c}": f"{100 * frac:.1f}%"
        for (org, c), (__, frac) in sorted(results.items())
    }
