#!/usr/bin/env python3
"""Fabric scaling — consumer latency and throughput versus bank count.

The fabric's pitch is that sharding the message memory over N banks
relieves the single dual-ported BRAM the paper's organizations wrap
(§3.1/§3.2).  This bench compiles the multi-pair producer/consumer
program onto 1/2/4-bank fabrics for both organizations and tabulates:

* consumer guarded-read latency (mean/max over the run);
* throughput (grants per cycle, rounds completed);
* crossbar and cross-bank router activity.

The workload is fully deterministic (the threads are self-driven and the
``spread`` dependency-home policy is a pure function of the memory map),
so the emitted table is identical run to run — asserted below by running
the whole study twice.

The sweep rides the fault-tolerant campaign engine
(:mod:`repro.campaign`): every (organization, banks) point is one
independent run, so ``--workers N`` fans the matrix across
crash-isolated processes while the merged table stays byte-identical to
the serial sweep (results are keyed and sorted by run index).

Run standalone to emit the CSV the CI bench-smoke job uploads:

    PYTHONPATH=src python benchmarks/bench_fabric_scaling.py \
        --banks 1 2 4 --csv fabric_scaling.csv --workers 2
"""

import argparse
import csv

import pytest

from repro.campaign import EngineConfig, RunSpec, run_matrix
from repro.core import Organization
from repro.flow import build_simulation, compile_design
from repro.net import multi_pair_source
from repro.report import Table
from repro.sim.probes import ConsumerLatencyProbe

#: recorded in the CSV for provenance; the run itself is seed-free
#: deterministic (no stochastic traffic is involved)
SEED = 7
BANKS = (1, 2, 4)
CYCLES = 1200
PAIRS = 3
CONSUMERS_PER_PAIR = 2

FIELDS = [
    "organization",
    "banks",
    "consumer_reads",
    "mean_wait",
    "max_wait",
    "grants_per_cycle",
    "rounds",
    "crossbar_delivered",
    "cross_bank_deps",
    "deps_routed",
]

#: Versioned tag of the emitted CSV (column meanings are documented in
#: docs/fabric.md, "CSV schema").  /2 added the leading ``#``-comment
#: provenance row; readers must skip lines starting with ``#``.
CSV_SCHEMA = "repro.bench.fabric_scaling/2"


def run_point(organization: Organization, banks: int, cycles: int) -> dict:
    design = compile_design(
        multi_pair_source(PAIRS, CONSUMERS_PER_PAIR),
        organization=organization,
        num_banks=banks,
        dep_home="spread",
    )
    sim = build_simulation(design)
    sim.run(cycles)
    fabric = sim.controllers["fabric"]
    stats = ConsumerLatencyProbe(fabric).overall_stats()
    fabric_stats = fabric.fabric_stats()
    router = fabric_stats["router"]
    return {
        "organization": organization.value,
        "banks": banks,
        "consumer_reads": stats.count,
        "mean_wait": f"{stats.mean_wait:.3f}",
        "max_wait": stats.max_wait,
        "grants_per_cycle": f"{len(fabric.latency_samples) / cycles:.4f}",
        "rounds": sum(
            e.stats.rounds_completed for e in sim.executors.values()
        ),
        "crossbar_delivered": fabric_stats["crossbar"]["delivered"],
        "cross_bank_deps": design.fabric.cross_bank_count,
        "deps_routed": router["writes_routed"] + router["reads_routed"],
    }


def scaling_point_task(payload: dict) -> dict:
    """One sweep point as a campaign-engine task (worker-process safe)."""
    return run_point(
        Organization(payload["organization"]),
        payload["banks"],
        payload["cycles"],
    )


def run_scaling(banks=BANKS, cycles=CYCLES, workers: int = 1) -> list[dict]:
    """Sweep the (organization × banks) matrix through the campaign
    engine; ``workers=1`` is the serial path, and any worker count
    merges to the identical table."""
    specs = [
        RunSpec(
            index=index,
            payload={
                "organization": organization.value,
                "banks": bank_count,
                "cycles": cycles,
            },
        )
        for index, (organization, bank_count) in enumerate(
            (organization, bank_count)
            for organization in (
                Organization.ARBITRATED,
                Organization.EVENT_DRIVEN,
            )
            for bank_count in banks
        )
    ]
    report = run_matrix(
        scaling_point_task, specs, EngineConfig(workers=workers)
    )
    failed = [r for r in report.results if not r.ok]
    if failed:
        raise RuntimeError(
            f"{len(failed)} sweep points failed: "
            + "; ".join(f"#{r.index}: {r.error}" for r in failed)
        )
    return [result.value for result in report.results]


def write_csv(rows: list[dict], path: str, cycles: int = CYCLES) -> None:
    with open(path, "w", newline="") as handle:
        # Leading comment row: schema tag + workload provenance, so the
        # artifact is self-describing (docs/fabric.md, "CSV schema").
        handle.write(
            f"# {CSV_SCHEMA}: multi_pair_source({PAIRS}, "
            f"{CONSUMERS_PER_PAIR}), {cycles} cycles, dep_home=spread; "
            "column meanings in docs/fabric.md\n"
        )
        writer = csv.DictWriter(handle, fieldnames=FIELDS + ["seed"])
        writer.writeheader()
        for row in rows:
            writer.writerow({**row, "seed": SEED})


def render(rows: list[dict], cycles: int = CYCLES) -> str:
    table = Table(
        f"fabric scaling ({PAIRS} pairs x {CONSUMERS_PER_PAIR} consumers, "
        f"{cycles} cycles, dep_home=spread)",
        FIELDS,
    )
    for row in rows:
        table.add_row(*(row[name] for name in FIELDS))
    return table.render()


@pytest.mark.benchmark(group="fabric")
def test_fabric_scaling(benchmark):
    rows = benchmark(run_scaling)
    print()
    print(render(rows))
    write_csv(rows, "BENCH_fabric_scaling.csv")

    # Fixed workload => the whole table is reproducible.
    assert rows == run_scaling()
    # ...and the campaign-engine merge is deterministic: a parallel
    # sweep produces the byte-identical table.
    assert rows == run_scaling(workers=2)

    by_key = {(r["organization"], r["banks"]): r for r in rows}
    for organization in ("arbitrated", "event_driven"):
        for banks in BANKS:
            row = by_key[(organization, banks)]
            # Every configuration made real progress...
            assert row["consumer_reads"] > 0
            assert row["rounds"] > 0
            # ...and multi-bank points exercised the cross-bank router.
            if banks > 1:
                assert row["cross_bank_deps"] > 0
                assert row["deps_routed"] > 0

    benchmark.extra_info["rows"] = rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--banks", type=int, nargs="+", default=list(BANKS))
    parser.add_argument("--cycles", type=int, default=CYCLES)
    parser.add_argument("--csv", default="fabric_scaling.csv")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan sweep points across crash-isolated worker processes",
    )
    arguments = parser.parse_args()
    rows = run_scaling(
        tuple(arguments.banks), arguments.cycles, workers=arguments.workers
    )
    print(render(rows, arguments.cycles))
    write_csv(rows, arguments.csv, arguments.cycles)
    print(f"wrote {arguments.csv}")


if __name__ == "__main__":
    main()
